//! Boolean algebra on deterministic obligations.
//!
//! Deterministic Büchi (DBA) and co-Büchi (DCA) automata are not closed
//! under all boolean operations, but the fragment the scheme library needs
//! is:
//!
//! | op | inputs | output | construction |
//! |---|---|---|---|
//! | `∩` | DBA, DBA | DBA | product with a 2-phase round-robin counter |
//! | `∪` | DBA, DBA | DBA | plain product, marks = either side marked |
//! | `∩` | DCA, DCA | DCA | plain product, marks = either side marked |
//! | `∪` | DCA, DCA | DCA | product with a counter, via De Morgan on DBAs |
//! | `¬` | either | the other | flip the acceptance |
//!
//! Mixed-acceptance intersections stay at the *conjunction-of-obligations*
//! level (a [`crate::schemes::RegularScheme`] is exactly that), so nothing
//! here loses generality — the algebra just lets a conjunction be
//! flattened into a single obligation when both sides have the same
//! acceptance kind, which is what `union` needs.

use crate::auto::{Acceptance, DetAutomaton, Obligation};
use std::collections::BTreeSet;

fn product_states(a: &DetAutomaton, b: &DetAutomaton, phases: usize) -> Vec<Vec<usize>> {
    // State encoding: ((sa * nb) + sb) * phases + phase.
    let (na, nb) = (a.state_count(), b.state_count());
    let alphabet = a.alphabet();
    let mut trans = Vec::with_capacity(na * nb * phases);
    for sa in 0..na {
        for sb in 0..nb {
            for phase in 0..phases {
                let row = (0..alphabet)
                    .map(|letter| {
                        let ta = a.step(sa, letter);
                        let tb = b.step(sb, letter);
                        // Phase advance is decided by the caller through
                        // the marks; here we keep the phase unchanged —
                        // the counter constructions override it.
                        ((ta * nb) + tb) * phases + phase
                    })
                    .collect();
                trans.push(row);
            }
        }
    }
    trans
}

fn decode(state: usize, nb: usize, phases: usize) -> (usize, usize, usize) {
    let phase = state % phases;
    let pair = state / phases;
    (pair / nb, pair % nb, phase)
}

/// `L(x) ∩ L(y)` for two Büchi obligations — the classic counter
/// construction: phase 0 waits for an `x`-mark, phase 1 for a `y`-mark;
/// completing the cycle (phase 1 → 0) is the new Büchi mark.
///
/// # Panics
/// Panics unless both obligations are Büchi over the same alphabet.
pub fn intersect_buchi(x: &Obligation, y: &Obligation) -> Obligation {
    let (Acceptance::Buchi(fx), Acceptance::Buchi(fy)) = (&x.acceptance, &y.acceptance) else {
        panic!("intersect_buchi needs two Büchi obligations");
    };
    let (a, b) = (&x.automaton, &y.automaton);
    assert_eq!(a.alphabet(), b.alphabet(), "alphabet mismatch");
    let (nb, phases) = (b.state_count(), 2);
    let mut trans = product_states(a, b, phases);
    let alphabet = a.alphabet();
    let mut marks = BTreeSet::new();
    #[allow(clippy::needless_range_loop)] // state-id arithmetic reads clearer indexed
    for state in 0..trans.len() {
        let (sa, sb, phase) = decode(state, nb, phases);
        // Phase logic: in phase 0, seeing an fx-state moves to phase 1;
        // in phase 1, seeing an fy-state wraps to phase 0 (and the wrap
        // itself is the mark).
        let next_phase = match phase {
            0 if fx.contains(&sa) => 1,
            1 if fy.contains(&sb) => 0,
            p => p,
        };
        if phase == 1 && fy.contains(&sb) {
            marks.insert(state);
        }
        for letter in 0..alphabet {
            let target = trans[state][letter];
            let (ta, tb, _) = decode(target, nb, phases);
            trans[state][letter] = ((ta * nb) + tb) * phases + next_phase;
        }
    }
    let init = ((a.init() * nb) + b.init()) * phases; // phase 0
    Obligation::new(
        DetAutomaton::new(alphabet, trans, init),
        Acceptance::Buchi(marks),
    )
}

/// `L(x) ∪ L(y)` for two Büchi obligations: plain product, a state is
/// marked when either component is.
///
/// # Panics
/// Panics unless both obligations are Büchi over the same alphabet.
pub fn union_buchi(x: &Obligation, y: &Obligation) -> Obligation {
    let (Acceptance::Buchi(fx), Acceptance::Buchi(fy)) = (&x.acceptance, &y.acceptance) else {
        panic!("union_buchi needs two Büchi obligations");
    };
    let (a, b) = (&x.automaton, &y.automaton);
    assert_eq!(a.alphabet(), b.alphabet(), "alphabet mismatch");
    let nb = b.state_count();
    let trans = product_states(a, b, 1);
    let marks: BTreeSet<usize> = (0..trans.len())
        .filter(|&s| {
            let (sa, sb, _) = decode(s, nb, 1);
            fx.contains(&sa) || fy.contains(&sb)
        })
        .collect();
    let init = (a.init() * nb) + b.init();
    Obligation::new(
        DetAutomaton::new(a.alphabet(), trans, init),
        Acceptance::Buchi(marks),
    )
}

/// `L(x) ∩ L(y)` for two co-Büchi obligations: plain product; a state is
/// bad when either component is bad (eventually avoiding both = eventually
/// avoiding the union).
///
/// # Panics
/// Panics unless both obligations are co-Büchi over the same alphabet.
pub fn intersect_cobuchi(x: &Obligation, y: &Obligation) -> Obligation {
    let (Acceptance::CoBuchi(fx), Acceptance::CoBuchi(fy)) = (&x.acceptance, &y.acceptance)
    else {
        panic!("intersect_cobuchi needs two co-Büchi obligations");
    };
    let (a, b) = (&x.automaton, &y.automaton);
    assert_eq!(a.alphabet(), b.alphabet(), "alphabet mismatch");
    let nb = b.state_count();
    let trans = product_states(a, b, 1);
    let marks: BTreeSet<usize> = (0..trans.len())
        .filter(|&s| {
            let (sa, sb, _) = decode(s, nb, 1);
            fx.contains(&sa) || fy.contains(&sb)
        })
        .collect();
    let init = (a.init() * nb) + b.init();
    Obligation::new(
        DetAutomaton::new(a.alphabet(), trans, init),
        Acceptance::CoBuchi(marks),
    )
}

/// `L(x) ∪ L(y)` for two co-Büchi obligations, by De Morgan:
/// `¬(¬x ∩ ¬y)` with the Büchi counter in the middle.
///
/// # Panics
/// Panics unless both obligations are co-Büchi over the same alphabet.
pub fn union_cobuchi(x: &Obligation, y: &Obligation) -> Obligation {
    assert!(
        matches!(x.acceptance, Acceptance::CoBuchi(_))
            && matches!(y.acceptance, Acceptance::CoBuchi(_)),
        "union_cobuchi needs two co-Büchi obligations"
    );
    intersect_buchi(&x.complement(), &y.complement()).complement()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Binary alphabet fixtures.
    fn inf(letter: usize) -> Obligation {
        Obligation::letter_recurrence(2, move |a| a == letter)
    }

    fn fin(letter: usize) -> Obligation {
        inf(letter).complement()
    }

    /// Exhaustive small-lasso universe over {0, 1}.
    fn lassos() -> Vec<(Vec<usize>, Vec<usize>)> {
        let words = |len: usize| -> Vec<Vec<usize>> {
            (0..(1usize << len))
                .map(|bits| (0..len).map(|i| (bits >> i) & 1).collect())
                .collect()
        };
        let mut out = Vec::new();
        for pl in 0..=3 {
            for prefix in words(pl) {
                for cl in 1..=3 {
                    for cycle in words(cl) {
                        out.push((prefix.clone(), cycle.clone()));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn buchi_intersection_semantics() {
        let both = intersect_buchi(&inf(0), &inf(1));
        for (p, c) in lassos() {
            let expect = inf(0).accepts_lasso(&p, &c) && inf(1).accepts_lasso(&p, &c);
            assert_eq!(both.accepts_lasso(&p, &c), expect, "{p:?}({c:?})");
        }
    }

    #[test]
    fn buchi_union_semantics() {
        let either = union_buchi(&inf(0), &inf(1));
        for (p, c) in lassos() {
            let expect = inf(0).accepts_lasso(&p, &c) || inf(1).accepts_lasso(&p, &c);
            assert_eq!(either.accepts_lasso(&p, &c), expect, "{p:?}({c:?})");
        }
    }

    #[test]
    fn cobuchi_intersection_semantics() {
        let both = intersect_cobuchi(&fin(0), &fin(1));
        for (p, c) in lassos() {
            let expect = fin(0).accepts_lasso(&p, &c) && fin(1).accepts_lasso(&p, &c);
            assert_eq!(both.accepts_lasso(&p, &c), expect, "{p:?}({c:?})");
        }
    }

    #[test]
    fn cobuchi_union_semantics() {
        let either = union_cobuchi(&fin(0), &fin(1));
        for (p, c) in lassos() {
            let expect = fin(0).accepts_lasso(&p, &c) || fin(1).accepts_lasso(&p, &c);
            assert_eq!(either.accepts_lasso(&p, &c), expect, "{p:?}({c:?})");
        }
    }

    #[test]
    fn intersection_of_inf_and_its_negation_is_empty() {
        // inf(1) ∩ fin(1) = ∅; with the algebra we can phrase it as a
        // single conjunction and the product search must agree.
        let contradiction = [inf(1), fin(1)];
        assert_eq!(crate::product::find_accepted_lasso(&contradiction), None);
    }

    #[test]
    fn s1_as_union_of_automata_matches_classic() {
        // S1 = T_White ∪ T_Black, assembled with union_cobuchi from the
        // two safety automata — must match the classic scheme exactly.
        use crate::pairs::gamma_index;
        use crate::schemes::RegularScheme;
        use minobs_core::letter::GammaLetter;
        use minobs_core::prelude::*;

        let w_idx = gamma_index(GammaLetter::DropWhite);
        let b_idx = gamma_index(GammaLetter::DropBlack);
        let t_white = Obligation::letter_safety(3, move |a| a == 0 || a == w_idx);
        let t_black = Obligation::letter_safety(3, move |a| a == 0 || a == b_idx);
        let s1 = RegularScheme::new("S1 via union", vec![union_cobuchi(&t_white, &t_black)]);

        let cls = classic::s1();
        for s in minobs_core::scenario::enumerate_gamma_lassos(2, 2) {
            assert_eq!(s1.contains(&s), cls.contains(&s), "{s}");
        }
        let verdict = crate::schemes::decide_regular(&s1);
        assert_eq!(verdict.is_solvable(), decide_classic(&cls).is_solvable());
    }

    #[test]
    #[should_panic(expected = "needs two Büchi")]
    fn intersect_buchi_rejects_cobuchi() {
        let _ = intersect_buchi(&fin(0), &inf(1));
    }

    #[test]
    #[should_panic(expected = "alphabet mismatch")]
    fn alphabet_mismatch_rejected() {
        let x = Obligation::letter_recurrence(2, |a| a == 0);
        let y = Obligation::letter_recurrence(3, |a| a == 0);
        let _ = intersect_buchi(&x, &y);
    }
}
