//! Emptiness of obligation conjunctions, with lasso witness extraction.
//!
//! Given obligations `O_1 ∧ … ∧ O_k` over a shared alphabet, a word
//! satisfies the conjunction iff its (deterministic) product run
//!
//! * visits, for every Büchi obligation `i`, a product state whose `i`-th
//!   component is marked, infinitely often; and
//! * eventually avoids, for every co-Büchi obligation `j`, all product
//!   states whose `j`-th component is marked.
//!
//! A lasso witness therefore consists of a reachable cycle inside the
//! *clean* subgraph (no co-Büchi marks) that touches every Büchi mark.
//! The search: build the reachable product graph, restrict to clean
//! states, compute SCCs (iterative Tarjan), and look for a reachable SCC
//! containing every Büchi color; the witness cycle is stitched inside the
//! SCC by BFS hops through one representative per color.

use crate::auto::{Acceptance, Obligation};
use std::collections::{HashMap, VecDeque};

/// An ultimately periodic witness word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LassoWitness {
    /// The transient letters.
    pub prefix: Vec<usize>,
    /// The repeated letters (nonempty).
    pub cycle: Vec<usize>,
}

impl LassoWitness {
    /// The letter at position `r`.
    pub fn letter_at(&self, r: usize) -> usize {
        if r < self.prefix.len() {
            self.prefix[r]
        } else {
            self.cycle[(r - self.prefix.len()) % self.cycle.len()]
        }
    }
}

/// Finds a lasso accepted by every obligation, or `None` when the
/// conjunction is empty.
///
/// # Panics
/// Panics when `obligations` is empty or the alphabets disagree.
pub fn find_accepted_lasso(obligations: &[Obligation]) -> Option<LassoWitness> {
    assert!(!obligations.is_empty(), "need at least one obligation");
    let alphabet = obligations[0].automaton.alphabet();
    assert!(
        obligations.iter().all(|o| o.automaton.alphabet() == alphabet),
        "obligations must share an alphabet"
    );

    // ---- Explore the reachable product space. ----
    let init: Vec<usize> = obligations.iter().map(|o| o.automaton.init()).collect();
    let mut ids: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut states: Vec<Vec<usize>> = Vec::new();
    let mut succ: Vec<Vec<usize>> = Vec::new(); // succ[id][letter]
    ids.insert(init.clone(), 0);
    states.push(init);
    let mut frontier = VecDeque::from([0usize]);
    while let Some(id) = frontier.pop_front() {
        let state = states[id].clone();
        let mut row = Vec::with_capacity(alphabet);
        for a in 0..alphabet {
            let next: Vec<usize> = state
                .iter()
                .zip(obligations)
                .map(|(&s, o)| o.automaton.step(s, a))
                .collect();
            let nid = *ids.entry(next.clone()).or_insert_with(|| {
                states.push(next);
                frontier.push_back(states.len() - 1);
                states.len() - 1
            });
            row.push(nid);
        }
        succ.push(row);
        // `states` may have grown; `succ` rows are appended in id order
        // because the frontier is processed in insertion order.
        debug_assert!(succ.len() <= states.len());
    }
    // Fill rows for states discovered after their own dequeue (BFS handles
    // all: every state enters the frontier exactly once, so succ has a row
    // per state by the end).
    debug_assert_eq!(succ.len(), states.len());

    // ---- Classify states. ----
    let is_clean = |id: usize| -> bool {
        states[id]
            .iter()
            .zip(obligations)
            .all(|(&s, o)| match &o.acceptance {
                Acceptance::CoBuchi(f) => !f.contains(&s),
                Acceptance::Buchi(_) => true,
            })
    };
    let buchi_colors: Vec<usize> = obligations
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o.acceptance, Acceptance::Buchi(_)))
        .map(|(i, _)| i)
        .collect();
    let has_color = |id: usize, i: usize| -> bool {
        match &obligations[i].acceptance {
            Acceptance::Buchi(f) => f.contains(&states[id][i]),
            Acceptance::CoBuchi(_) => unreachable!(),
        }
    };

    // ---- SCCs of the clean subgraph (iterative Tarjan). ----
    let n = states.len();
    let mut scc_id = vec![usize::MAX; n];
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut scc_count = 0usize;
    // Each SCC also records whether it contains an internal edge (so a
    // singleton with a self-loop counts as cyclic).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if !is_clean(start) || index[start] != usize::MAX {
            continue;
        }
        call_stack.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ai)) = call_stack.last_mut() {
            if *ai < alphabet {
                let a = *ai;
                *ai += 1;
                let w = succ[v][a];
                if !is_clean(w) {
                    continue;
                }
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        scc_id[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }

    // ---- Which SCCs are cyclic and carry every Büchi color? ----
    let mut cyclic = vec![false; scc_count];
    let mut size = vec![0usize; scc_count];
    for v in 0..n {
        if scc_id[v] == usize::MAX {
            continue;
        }
        size[scc_id[v]] += 1;
        if succ[v].contains(&v) {
            cyclic[scc_id[v]] = true; // self-loop
        }
    }
    for c in 0..scc_count {
        if size[c] > 1 {
            cyclic[c] = true;
        }
    }
    let mut colors_in_scc: Vec<Vec<bool>> = vec![vec![false; buchi_colors.len()]; scc_count];
    for v in 0..n {
        if scc_id[v] == usize::MAX {
            continue;
        }
        for (k, &i) in buchi_colors.iter().enumerate() {
            if has_color(v, i) {
                colors_in_scc[scc_id[v]][k] = true;
            }
        }
    }
    let good_scc = (0..scc_count)
        .find(|&c| cyclic[c] && colors_in_scc[c].iter().all(|&b| b))?;

    // ---- Witness prefix: BFS from the initial state (through any states)
    //      to some vertex of the good SCC. ----
    let bfs = |sources: &[usize], goal: &dyn Fn(usize) -> bool, clean_only: bool| -> Option<(usize, Vec<usize>)> {
        let mut prev: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut queue: VecDeque<usize> = sources.iter().copied().collect();
        let mut seen: Vec<bool> = vec![false; n];
        for &s in sources {
            seen[s] = true;
        }
        while let Some(v) = queue.pop_front() {
            if goal(v) {
                // Rebuild letters back to a source.
                let mut letters = Vec::new();
                let mut cur = v;
                while let Some(&(p, a)) = prev.get(&cur) {
                    letters.push(a);
                    cur = p;
                }
                letters.reverse();
                return Some((v, letters));
            }
            for (a, &w) in succ[v].iter().enumerate() {
                if clean_only && !is_clean(w) {
                    continue;
                }
                if !seen[w] {
                    seen[w] = true;
                    prev.insert(w, (v, a));
                    queue.push_back(w);
                }
            }
        }
        None
    };

    let in_good = |v: usize| scc_id[v] != usize::MAX && scc_id[v] == good_scc;
    let (entry, prefix) = bfs(&[0], &|v| in_good(v), false)?;

    // ---- Witness cycle: inside the SCC, hop through one representative
    //      per Büchi color, then return to the entry. ----
    let within = |v: usize| in_good(v);
    let mut cycle: Vec<usize> = Vec::new();
    let mut cur = entry;
    for &i in &buchi_colors {
        let (reached, letters) = bfs(&[cur], &|v| within(v) && has_color(v, i), true)
            .expect("color present in SCC");
        cycle.extend(letters);
        cur = reached;
    }
    // Close the loop back to `entry`; if we never moved, force one step.
    if cur == entry && cycle.is_empty() {
        // Find any edge leaving `entry` that stays in the SCC.
        let a = (0..alphabet)
            .find(|&a| within(succ[entry][a]))
            .expect("cyclic SCC has an internal edge");
        cycle.push(a);
        cur = succ[entry][a];
    }
    if cur != entry {
        let (_, letters) = bfs(&[cur], &|v| v == entry, true).expect("SCC is strongly connected");
        cycle.extend(letters);
    }
    debug_assert!(!cycle.is_empty());
    Some(LassoWitness { prefix, cycle })
}

/// Does the conjunction accept the given lasso? (Convenience for tests.)
pub fn conjunction_accepts(obligations: &[Obligation], w: &LassoWitness) -> bool {
    obligations
        .iter()
        .all(|o| o.accepts_lasso(&w.prefix, &w.cycle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::Obligation;

    #[test]
    fn single_trivial_is_nonempty() {
        let w = find_accepted_lasso(&[Obligation::trivial(2)]).unwrap();
        assert!(conjunction_accepts(&[Obligation::trivial(2)], &w));
    }

    #[test]
    fn contradictory_safety_is_empty() {
        let only0 = Obligation::letter_safety(2, |a| a == 0);
        let only1 = Obligation::letter_safety(2, |a| a == 1);
        assert_eq!(find_accepted_lasso(&[only0, only1]), None);
    }

    #[test]
    fn buchi_conjunction_interleaves() {
        let inf0 = Obligation::letter_recurrence(2, |a| a == 0);
        let inf1 = Obligation::letter_recurrence(2, |a| a == 1);
        let obls = [inf0, inf1];
        let w = find_accepted_lasso(&obls).unwrap();
        assert!(conjunction_accepts(&obls, &w));
        // The cycle must contain both letters.
        assert!(w.cycle.contains(&0) && w.cycle.contains(&1));
    }

    #[test]
    fn buchi_against_safety() {
        // Only letter 0 allowed forever, but must see letter 1 infinitely
        // often: empty.
        let obls = [
            Obligation::letter_safety(2, |a| a == 0),
            Obligation::letter_recurrence(2, |a| a == 1),
        ];
        assert_eq!(find_accepted_lasso(&obls), None);
    }

    #[test]
    fn eventually_needs_prefix_or_cycle_hit() {
        let obls = [
            Obligation::letter_eventually(3, |a| a == 2),
            Obligation::letter_recurrence(3, |a| a == 0),
        ];
        let w = find_accepted_lasso(&obls).unwrap();
        assert!(conjunction_accepts(&obls, &w));
    }

    #[test]
    fn cobuchi_forces_letter_out_of_cycle() {
        // Letter 1 only finitely often + letter 1 at least once:
        // witness must have 1 in the prefix but not in the cycle.
        let fin1 = Obligation::letter_recurrence(2, |a| a == 1).complement();
        let once1 = Obligation::letter_eventually(2, |a| a == 1);
        let obls = [fin1, once1];
        let w = find_accepted_lasso(&obls).unwrap();
        assert!(conjunction_accepts(&obls, &w));
        assert!(!w.cycle.contains(&1));
        let all: Vec<usize> = w.prefix.iter().chain(&w.cycle).copied().collect();
        assert!(all.contains(&1));
    }

    #[test]
    fn three_way_conjunction() {
        // Over {0,1,2}: infinitely many 0, infinitely many 1, finitely
        // many 2, and at least one 2.
        let obls = [
            Obligation::letter_recurrence(3, |a| a == 0),
            Obligation::letter_recurrence(3, |a| a == 1),
            Obligation::letter_recurrence(3, |a| a == 2).complement(),
            Obligation::letter_eventually(3, |a| a == 2),
        ];
        let w = find_accepted_lasso(&obls).unwrap();
        assert!(conjunction_accepts(&obls, &w), "{w:?}");
    }

    #[test]
    fn witness_letter_at() {
        let w = LassoWitness {
            prefix: vec![7, 8],
            cycle: vec![1, 2, 3],
        };
        let got: Vec<usize> = (0..8).map(|r| w.letter_at(r)).collect();
        assert_eq!(got, vec![7, 8, 1, 2, 3, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "share an alphabet")]
    fn mismatched_alphabets_rejected() {
        let _ = find_accepted_lasso(&[Obligation::trivial(2), Obligation::trivial(3)]);
    }

    mod random_automata {
        use super::*;
        use crate::auto::{Acceptance, DetAutomaton};
        use proptest::prelude::*;

        /// A random complete deterministic automaton with random marks.
        fn arb_obligation(
            alphabet: usize,
            max_states: usize,
        ) -> impl Strategy<Value = Obligation> {
            (2..=max_states).prop_flat_map(move |n| {
                let trans =
                    proptest::collection::vec(proptest::collection::vec(0..n, alphabet), n);
                let marks = proptest::collection::btree_set(0..n, 0..=n);
                let buchi = any::<bool>();
                (trans, marks, buchi, 0..n).prop_map(move |(t, m, b, init)| {
                    let auto = DetAutomaton::new(alphabet, t, init);
                    let acc = if b {
                        Acceptance::Buchi(m)
                    } else {
                        Acceptance::CoBuchi(m)
                    };
                    Obligation::new(auto, acc)
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Soundness: every returned witness is accepted by every
            /// obligation of the conjunction.
            #[test]
            fn prop_witness_is_accepted(
                obls in proptest::collection::vec(arb_obligation(3, 5), 1..4)
            ) {
                if let Some(w) = find_accepted_lasso(&obls) {
                    prop_assert!(
                        conjunction_accepts(&obls, &w),
                        "witness {w:?} rejected by its own conjunction"
                    );
                    prop_assert!(!w.cycle.is_empty());
                }
            }

            /// Semi-completeness: a conjunction reported empty rejects a
            /// battery of concrete probe lassos.
            #[test]
            fn prop_empty_rejects_probes(
                obls in proptest::collection::vec(arb_obligation(2, 4), 1..4)
            ) {
                if find_accepted_lasso(&obls).is_none() {
                    let probes = [
                        (vec![], vec![0]),
                        (vec![], vec![1]),
                        (vec![], vec![0, 1]),
                        (vec![0], vec![1]),
                        (vec![1, 1], vec![0, 0, 1]),
                        (vec![0, 1, 0], vec![1, 0]),
                    ];
                    for (p, c) in probes {
                        prop_assert!(
                            !obls.iter().all(|o| o.accepts_lasso(&p, &c)),
                            "conjunction declared empty but accepts {p:?}({c:?})"
                        );
                    }
                }
            }

            /// Complement soundness: an obligation and its complement never
            /// both accept, and never both reject, a lasso.
            #[test]
            fn prop_complement_partitions(
                o in arb_obligation(2, 5),
                prefix in proptest::collection::vec(0usize..2, 0..4),
                cycle in proptest::collection::vec(0usize..2, 1..4),
            ) {
                let c = o.complement();
                prop_assert_ne!(
                    o.accepts_lasso(&prefix, &cycle),
                    c.accepts_lasso(&prefix, &cycle)
                );
            }
        }
    }
}
