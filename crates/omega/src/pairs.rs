//! Pair-alphabet automata over `Γ × Γ`: the special-pair relation as an
//! ω-regular language.
//!
//! A pair of scenarios `(w, w')` is special (Definition III.7) iff the
//! index difference `d_r = ind(w_r) - ind(w'_r)` stays in `{-1, 0, 1}`
//! forever and is eventually nonzero. The difference evolves through the
//! finite state `(d, parity of ind(w_r), parity of ind(w'_r))`, so the
//! relation is recognized by a 13-state deterministic Büchi automaton over
//! the product alphabet — and condition III.8.ii becomes an emptiness
//! query.

use crate::auto::{Acceptance, DetAutomaton, Obligation};
use minobs_core::letter::GammaLetter;

/// Size of the `Γ` alphabet.
pub const GAMMA: usize = 3;
/// Size of the pair alphabet `Γ × Γ`.
pub const GAMMA_PAIR: usize = GAMMA * GAMMA;

/// Letter index of a `Γ` letter (order of [`GammaLetter::ALL`]:
/// `Full = 0`, `DropWhite = 1`, `DropBlack = 2`).
pub fn gamma_index(g: GammaLetter) -> usize {
    GammaLetter::ALL.iter().position(|&x| x == g).unwrap()
}

/// The `Γ` letter of an index.
pub fn gamma_letter(i: usize) -> GammaLetter {
    GammaLetter::ALL[i]
}

/// Encodes a pair of `Γ` letter indexes into the pair alphabet.
pub fn pair_index(first: usize, second: usize) -> usize {
    first * GAMMA + second
}

/// Splits a pair-alphabet letter into its components.
pub fn pair_split(p: usize) -> (usize, usize) {
    (p / GAMMA, p % GAMMA)
}

/// Projects a pair letter to its first component.
pub fn project_first(p: usize) -> usize {
    p / GAMMA
}

/// Projects a pair letter to its second component.
pub fn project_second(p: usize) -> usize {
    p % GAMMA
}

fn delta(letter_index: usize) -> i32 {
    gamma_letter(letter_index).delta() as i32
}

/// The special-pair obligation over `Γ × Γ`.
///
/// States encode `(d + 1, parity₁, parity₂)` with a rejecting sink; the
/// Büchi marks are the states with `d ≠ 0` (once nonzero, `d` can never
/// return to zero, so "infinitely often nonzero" ⟺ "the words differ").
pub fn spair_obligation() -> Obligation {
    const SINK: usize = 12;
    let encode = |d: i32, even1: bool, even2: bool| -> usize {
        ((d + 1) as usize) * 4 + (even1 as usize) * 2 + (even2 as usize)
    };
    let mut trans = vec![vec![SINK; GAMMA_PAIR]; 13];
    for d in -1..=1 {
        for even1 in [false, true] {
            for even2 in [false, true] {
                let s = encode(d, even1, even2);
                #[allow(clippy::needless_range_loop)] // indexing by pair code is the clearer reading
                for p in 0..GAMMA_PAIR {
                    let (a, b) = pair_split(p);
                    let s1 = if even1 { delta(a) } else { -delta(a) };
                    let s2 = if even2 { delta(b) } else { -delta(b) };
                    let nd = 3 * d + s1 - s2;
                    trans[s][p] = if nd.abs() >= 2 {
                        SINK
                    } else {
                        // Parity flips exactly on Full letters (δ = 0 via
                        // index 0).
                        let ne1 = if a == 0 { !even1 } else { even1 };
                        let ne2 = if b == 0 { !even2 } else { even2 };
                        encode(nd, ne1, ne2)
                    };
                }
            }
        }
    }
    let marks: std::collections::BTreeSet<usize> = (0..12)
        .filter(|&s| s / 4 != 1) // d-component ≠ 0
        .collect();
    Obligation::new(
        DetAutomaton::new(GAMMA_PAIR, trans, encode(0, true, true)),
        Acceptance::Buchi(marks),
    )
}

/// Lifts a `Γ`-obligation to the pair alphabet, reading the chosen
/// component.
pub fn lift_to_pairs(o: &Obligation, second_component: bool) -> Obligation {
    let map: fn(usize) -> usize = if second_component {
        project_second
    } else {
        project_first
    };
    Obligation::new(
        o.automaton.relabel(GAMMA_PAIR, map),
        o.acceptance.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_core::prelude::*;
    use minobs_core::spair::is_special_pair;

    fn encode_pair_lasso(a: &Scenario, b: &Scenario) -> (Vec<usize>, Vec<usize>) {
        // Align the two lassos: prefix = max transient, cycle = lcm.
        let pre = a.lasso_prefix().len().max(b.lasso_prefix().len());
        let lcm = {
            let (x, y) = (a.lasso_cycle().len(), b.lasso_cycle().len());
            let gcd = |mut a: usize, mut b: usize| {
                while b != 0 {
                    let t = a % b;
                    a = b;
                    b = t;
                }
                a
            };
            x / gcd(x, y) * y
        };
        let at = |s: &Scenario, r: usize| gamma_index(s.letter_at(r).to_gamma().unwrap());
        let prefix = (0..pre).map(|r| pair_index(at(a, r), at(b, r))).collect();
        let cycle = (pre..pre + lcm)
            .map(|r| pair_index(at(a, r), at(b, r)))
            .collect();
        (prefix, cycle)
    }

    #[test]
    fn gamma_index_roundtrip() {
        for g in GammaLetter::ALL {
            assert_eq!(gamma_letter(gamma_index(g)), g);
        }
        assert_eq!(gamma_index(GammaLetter::Full), 0);
    }

    #[test]
    fn pair_encoding_roundtrip() {
        for a in 0..GAMMA {
            for b in 0..GAMMA {
                let p = pair_index(a, b);
                assert_eq!(pair_split(p), (a, b));
                assert_eq!(project_first(p), a);
                assert_eq!(project_second(p), b);
            }
        }
    }

    #[test]
    fn spair_automaton_agrees_with_direct_decision() {
        let obligation = spair_obligation();
        let lassos = minobs_core::scenario::enumerate_gamma_lassos(2, 2);
        for a in &lassos {
            for b in &lassos {
                let (prefix, cycle) = encode_pair_lasso(a, b);
                let automaton_says = obligation.accepts_lasso(&prefix, &cycle);
                let direct = is_special_pair(a, b);
                assert_eq!(automaton_says, direct, "{a} / {b}");
            }
        }
    }

    #[test]
    fn lifted_obligation_reads_chosen_component() {
        use crate::auto::Obligation;
        // "infinitely many DropWhite" on the first component.
        let base = Obligation::letter_recurrence(GAMMA, |a| a == 1);
        let lifted = lift_to_pairs(&base, false);
        // Pair stream ((DropWhite, Full))^ω = index (1,0) = 3.
        assert!(lifted.accepts_lasso(&[], &[pair_index(1, 0)]));
        assert!(!lifted.accepts_lasso(&[], &[pair_index(0, 1)]));
        let lifted2 = lift_to_pairs(&base, true);
        assert!(lifted2.accepts_lasso(&[], &[pair_index(0, 1)]));
    }
}
