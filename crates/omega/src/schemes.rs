//! Omission schemes as conjunctions of ω-automata obligations, and the
//! Theorem III.8 decision procedure for all of them.
//!
//! A [`RegularScheme`] denotes `L = L(O_1) ∩ … ∩ L(O_k) ⊆ Γ^ω`. The
//! representation is closed under everything the catalog needs, and its
//! complement distributes into the disjunction `∪_i ¬L(O_i)` — each
//! disjunct a single flipped obligation — which is exactly the shape the
//! emptiness queries consume.

use crate::auto::Obligation;
use crate::pairs::{
    gamma_index, gamma_letter, lift_to_pairs, pair_split, spair_obligation, GAMMA,
};
use crate::product::{find_accepted_lasso, LassoWitness};
use minobs_core::letter::{GammaLetter, Role};
use minobs_core::prelude::*;
use minobs_core::scheme::GammaScheme;
use minobs_core::word::Word;

/// An ω-regular omission scheme within `Γ^ω`, denoted by a conjunction of
/// deterministic obligations.
#[derive(Debug, Clone)]
pub struct RegularScheme {
    name: String,
    obligations: Vec<Obligation>,
}

impl RegularScheme {
    /// Builds a scheme from obligations (all over the `Γ` alphabet).
    ///
    /// # Panics
    /// Panics when an obligation's alphabet is not `Γ`'s.
    pub fn new(name: impl Into<String>, obligations: Vec<Obligation>) -> RegularScheme {
        assert!(!obligations.is_empty(), "need at least one obligation");
        for o in &obligations {
            assert_eq!(o.automaton.alphabet(), GAMMA, "obligations must read Γ");
        }
        RegularScheme {
            name: name.into(),
            obligations,
        }
    }

    /// The obligations (read-only).
    pub fn obligations(&self) -> &[Obligation] {
        &self.obligations
    }

    /// Intersection with another scheme: concatenate obligations.
    pub fn intersect(&self, other: &RegularScheme) -> RegularScheme {
        let mut obligations = self.obligations.clone();
        obligations.extend(other.obligations.iter().cloned());
        RegularScheme {
            name: format!("({}) ∩ ({})", self.name, other.name),
            obligations,
        }
    }

    /// Is the whole scheme empty?
    pub fn is_empty(&self) -> bool {
        find_accepted_lasso(&self.obligations).is_none()
    }

    /// Some member scenario, if any.
    pub fn sample_member(&self) -> Option<Scenario> {
        find_accepted_lasso(&self.obligations).map(|w| witness_to_scenario(&w))
    }

    fn scenario_lasso(w: &Scenario) -> Option<(Vec<usize>, Vec<usize>)> {
        if !w.is_gamma() {
            return None;
        }
        let enc = |word: &Word| -> Vec<usize> {
            word.iter()
                .map(|l| gamma_index(l.to_gamma().unwrap()))
                .collect()
        };
        Some((enc(w.lasso_prefix()), enc(w.lasso_cycle())))
    }
}

/// Converts a `Γ`-alphabet witness into a scenario.
pub fn witness_to_scenario(w: &LassoWitness) -> Scenario {
    let dec = |letters: &[usize]| -> Word {
        letters
            .iter()
            .map(|&i| gamma_letter(i).to_letter())
            .collect()
    };
    Scenario::new(dec(&w.prefix), dec(&w.cycle))
}

/// Converts a pair-alphabet witness into the two component scenarios.
pub fn pair_witness_to_scenarios(w: &LassoWitness) -> (Scenario, Scenario) {
    let dec = |letters: &[usize], second: bool| -> Word {
        letters
            .iter()
            .map(|&p| {
                let (a, b) = pair_split(p);
                gamma_letter(if second { b } else { a }).to_letter()
            })
            .collect()
    };
    (
        Scenario::new(dec(&w.prefix, false), dec(&w.cycle, false)),
        Scenario::new(dec(&w.prefix, true), dec(&w.cycle, true)),
    )
}

impl OmissionScheme for RegularScheme {
    fn contains(&self, w: &Scenario) -> bool {
        let Some((prefix, cycle)) = Self::scenario_lasso(w) else {
            return false;
        };
        self.obligations
            .iter()
            .all(|o| o.accepts_lasso(&prefix, &cycle))
    }

    fn allows_prefix(&self, u: &Word) -> bool {
        let Some(g) = u.to_gamma() else {
            return false;
        };
        let letters: Vec<usize> = g.iter().map(gamma_index).collect();
        // u ∈ Pref(L) ⟺ L restarted after u is nonempty.
        let restarted: Vec<Obligation> = self
            .obligations
            .iter()
            .map(|o| Obligation {
                automaton: o.automaton.with_init(o.automaton.run(&letters)),
                acceptance: o.acceptance.clone(),
            })
            .collect();
        find_accepted_lasso(&restarted).is_some()
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl GammaScheme for RegularScheme {
    fn missing_fair_scenario(&self) -> Option<Scenario> {
        // Fair ∩ ¬L = ∪_i (Fair ∩ ¬O_i).
        let fair = fair_obligations();
        for o in &self.obligations {
            let mut query = vec![o.complement()];
            query.extend(fair.iter().cloned());
            if let Some(w) = find_accepted_lasso(&query) {
                return Some(witness_to_scenario(&w));
            }
        }
        None
    }

    fn missing_special_pair(&self) -> Option<(Scenario, Scenario)> {
        let spair = spair_obligation();
        for oi in &self.obligations {
            for oj in &self.obligations {
                let query = vec![
                    spair.clone(),
                    lift_to_pairs(&oi.complement(), false),
                    lift_to_pairs(&oj.complement(), true),
                ];
                if let Some(w) = find_accepted_lasso(&query) {
                    return Some(pair_witness_to_scenarios(&w));
                }
            }
        }
        None
    }
}

/// Decides Theorem III.8 for an ω-regular scheme.
pub fn decide_regular(scheme: &RegularScheme) -> Solvability {
    minobs_core::theorem::decide_gamma(scheme)
}

// ---------------------------------------------------------------------
// The classic catalog, as automata.
// ---------------------------------------------------------------------

/// The two fairness obligations: infinitely many letters deliver White's
/// message, and infinitely many deliver Black's.
pub fn fair_obligations() -> Vec<Obligation> {
    vec![
        Obligation::letter_recurrence(GAMMA, |a| a != gamma_index(GammaLetter::DropWhite)),
        Obligation::letter_recurrence(GAMMA, |a| a != gamma_index(GammaLetter::DropBlack)),
    ]
}

/// `S0 = {Full^ω}` as an automaton scheme.
pub fn regular_s0() -> RegularScheme {
    RegularScheme::new(
        "S0 (regular)",
        vec![Obligation::letter_safety(GAMMA, |a| a == 0)],
    )
}

/// `T_role` as an automaton scheme.
pub fn regular_t(role: Role) -> RegularScheme {
    let risky = gamma_index(GammaLetter::dropping(role));
    RegularScheme::new(
        format!("T_{role} (regular)"),
        vec![Obligation::letter_safety(GAMMA, move |a| {
            a == 0 || a == risky
        })],
    )
}

/// `C1` (crash model) as an automaton scheme: `Full^a` then one process
/// silent forever.
pub fn regular_c1() -> RegularScheme {
    use crate::auto::{Acceptance, DetAutomaton};
    // States: 0 clean, 1 White crashed, 2 Black crashed, 3 dead.
    let trans = vec![
        vec![0, 1, 2], // clean: Full stays, w → crashedW, b → crashedB
        vec![3, 1, 3], // crashedW: only w
        vec![3, 3, 2], // crashedB: only b
        vec![3, 3, 3],
    ];
    RegularScheme::new(
        "C1 (regular)",
        vec![Obligation::new(
            DetAutomaton::new(GAMMA, trans, 0),
            Acceptance::CoBuchi([3].into()),
        )],
    )
}

/// `S1` as an automaton scheme: at most one process ever loses messages.
pub fn regular_s1() -> RegularScheme {
    use crate::auto::{Acceptance, DetAutomaton};
    // States: 0 clean, 1 White-only faults, 2 Black-only, 3 dead.
    let trans = vec![
        vec![0, 1, 2],
        vec![1, 1, 3],
        vec![2, 3, 2],
        vec![3, 3, 3],
    ];
    RegularScheme::new(
        "S1 (regular)",
        vec![Obligation::new(
            DetAutomaton::new(GAMMA, trans, 0),
            Acceptance::CoBuchi([3].into()),
        )],
    )
}

/// `R1 = Γ^ω` as an automaton scheme.
pub fn regular_r1() -> RegularScheme {
    RegularScheme::new("R1 = Γω (regular)", vec![Obligation::trivial(GAMMA)])
}

/// `Fair(Γ^ω)` as an automaton scheme.
pub fn regular_fair() -> RegularScheme {
    RegularScheme::new("Fair(Γω) (regular)", fair_obligations())
}

/// `Γ^ω` minus a finite set of lasso scenarios.
pub fn regular_gamma_minus(excluded: &[Scenario]) -> RegularScheme {
    let obligations = excluded
        .iter()
        .map(|s| {
            let c = s.canonicalize();
            assert!(c.is_gamma(), "excluded scenarios must be in Γ^ω");
            difference_obligation(&c)
        })
        .collect();
    let list: Vec<String> = excluded.iter().map(|s| s.to_string()).collect();
    RegularScheme::new(format!("Γω \\ {{{}}} (regular)", list.join(", ")), obligations)
}

/// `Γ^ω \ {DropBlack^ω}` — the almost-fair scheme of Corollary IV.1.
pub fn regular_almost_fair() -> RegularScheme {
    regular_gamma_minus(&[Scenario::constant_gamma(GammaLetter::DropBlack)])
}

/// The classic total-omission budget `B_k` as an automaton scheme: a
/// `(k+2)`-state loss counter whose overflow state is rejecting.
pub fn regular_total_budget(k: usize) -> RegularScheme {
    use crate::auto::{Acceptance, DetAutomaton};
    // States 0..=k count losses; k+1 = overflow (absorbing).
    let overflow = k + 1;
    let mut trans = Vec::with_capacity(k + 2);
    for count in 0..=k {
        trans.push(
            (0..GAMMA)
                .map(|a| {
                    if a == 0 {
                        count // Full: no loss
                    } else if count == k {
                        overflow
                    } else {
                        count + 1
                    }
                })
                .collect(),
        );
    }
    trans.push(vec![overflow; GAMMA]);
    RegularScheme::new(
        format!("B{k} (regular, ≤ {k} total losses)"),
        vec![Obligation::new(
            DetAutomaton::new(GAMMA, trans, 0),
            Acceptance::CoBuchi([overflow].into()),
        )],
    )
}

/// The obligation "the word differs from the given lasso": a position
/// tracker that escapes to an absorbing accepting state on the first
/// mismatch.
fn difference_obligation(lasso: &Scenario) -> Obligation {
    use crate::auto::{Acceptance, DetAutomaton};
    let prefix_len = lasso.lasso_prefix().len();
    let cycle_len = lasso.lasso_cycle().len();
    let total = prefix_len + cycle_len;
    let escaped = total;
    let expected = |pos: usize| -> usize {
        gamma_index(lasso.letter_at(pos).to_gamma().unwrap())
    };
    let mut trans = Vec::with_capacity(total + 1);
    for pos in 0..total {
        let next = if pos + 1 < total {
            pos + 1
        } else {
            prefix_len // wrap into the cycle
        };
        trans.push(
            (0..GAMMA)
                .map(|a| if a == expected(pos) { next } else { escaped })
                .collect(),
        );
    }
    trans.push(vec![escaped; GAMMA]);
    Obligation::new(
        DetAutomaton::new(GAMMA, trans, 0),
        Acceptance::Buchi([escaped].into()),
    )
}

/// `Γ^ω` avoiding a fixed forbidden prefix.
pub fn regular_avoid_prefix(w0: &GammaWord) -> RegularScheme {
    use crate::auto::{Acceptance, DetAutomaton};
    let k = w0.len();
    // States 0..k track the match; k = dead (matched w0); k+1 = escaped.
    let dead = k;
    let escaped = k + 1;
    let mut trans = Vec::with_capacity(k + 2);
    for pos in 0..k {
        let expected = gamma_index(w0.get(pos).unwrap());
        trans.push(
            (0..GAMMA)
                .map(|a| {
                    if a == expected {
                        if pos + 1 == k {
                            dead
                        } else {
                            pos + 1
                        }
                    } else {
                        escaped
                    }
                })
                .collect(),
        );
    }
    // `dead` is only reached when k > 0; for k = 0 the initial state IS
    // dead (every word has the empty prefix), handled by init below.
    trans.push(vec![dead; GAMMA]); // dead
    trans.push(vec![escaped; GAMMA]); // escaped
    let init = if k == 0 { dead } else { 0 };
    RegularScheme::new(
        format!("Γω avoiding {w0} (regular)"),
        vec![Obligation::new(
            DetAutomaton::new(GAMMA, trans, init),
            Acceptance::CoBuchi([dead].into()),
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_core::scheme::classic;
    use minobs_core::theorem::{decide_classic, ConditionIII8};

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    /// The regular catalog paired with its exact classic twin.
    fn catalog() -> Vec<(RegularScheme, ClassicScheme)> {
        vec![
            (regular_s0(), classic::s0()),
            (regular_t(Role::White), classic::t_white()),
            (regular_t(Role::Black), classic::t_black()),
            (regular_c1(), classic::c1()),
            (regular_s1(), classic::s1()),
            (regular_r1(), classic::r1()),
            (regular_fair(), classic::fair_gamma()),
            (regular_almost_fair(), classic::almost_fair()),
            (regular_total_budget(0), classic::total_budget(0)),
            (regular_total_budget(1), classic::total_budget(1)),
            (regular_total_budget(3), classic::total_budget(3)),
        ]
    }

    #[test]
    fn membership_agrees_with_classic_catalog() {
        let lassos = minobs_core::scenario::enumerate_gamma_lassos(2, 2);
        for (reg, cls) in catalog() {
            for s in &lassos {
                assert_eq!(
                    reg.contains(s),
                    cls.contains(s),
                    "{} vs {} on {s}",
                    reg.name(),
                    cls.name()
                );
            }
        }
    }

    #[test]
    fn prefix_viability_agrees_with_classic_catalog() {
        for (reg, cls) in catalog() {
            for len in 0..4usize {
                for w in GammaWord::enumerate_all(len) {
                    let word = w.to_word();
                    assert_eq!(
                        reg.allows_prefix(&word),
                        cls.allows_prefix(&word),
                        "{} on prefix {w}",
                        reg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn verdicts_agree_with_classic_catalog() {
        for (reg, cls) in catalog() {
            let rv = decide_regular(&reg);
            let cv = decide_classic(&cls);
            assert_eq!(rv.is_solvable(), cv.is_solvable(), "{}", reg.name());
            if let Some(w) = rv.witness() {
                assert!(!reg.contains(w), "{}: witness {w} inside", reg.name());
                assert!(!cls.contains(w), "{}: witness {w} inside twin", reg.name());
            }
        }
    }

    #[test]
    fn regular_gamma_minus_pair_is_solvable() {
        let l = regular_gamma_minus(&[sc("-(w)"), sc("b(w)")]);
        let v = decide_regular(&l);
        assert!(v.is_solvable());
        assert_eq!(v.condition(), Some(ConditionIII8::MissingSpecialPair));
        let w = v.witness().unwrap();
        assert!(!l.contains(w));
    }

    #[test]
    fn regular_gamma_minus_half_pair_is_obstruction() {
        let l = regular_gamma_minus(&[sc("-(w)")]);
        assert!(!decide_regular(&l).is_solvable());
    }

    #[test]
    fn missing_pair_witnesses_are_special_and_missing() {
        let l = regular_gamma_minus(&[sc("-(w)"), sc("b(w)"), sc("(wb)")]);
        let (a, b) = l.missing_special_pair().expect("pair exists");
        assert!(minobs_core::spair::is_special_pair(&a, &b), "{a}/{b}");
        assert!(!l.contains(&a));
        assert!(!l.contains(&b));
    }

    #[test]
    fn missing_fair_found_through_automata() {
        let f = regular_s1().missing_fair_scenario().expect("fair missing");
        assert!(f.is_fair());
        assert!(!regular_s1().contains(&f));
        assert!(regular_r1().missing_fair_scenario().is_none());
        assert!(regular_fair().missing_fair_scenario().is_none());
    }

    #[test]
    fn avoid_prefix_scheme_matches_classic() {
        for w0 in ["w", "wb", "b-w", ""] {
            let g: GammaWord = w0.parse().unwrap_or_else(|_| GammaWord::empty());
            let reg = regular_avoid_prefix(&g);
            let cls = ClassicScheme::AvoidPrefix(g.to_word());
            for s in minobs_core::scenario::enumerate_gamma_lassos(2, 2) {
                assert_eq!(reg.contains(&s), cls.contains(&s), "w0={w0} s={s}");
            }
            let rv = decide_regular(&reg);
            let cv = decide_classic(&cls);
            assert_eq!(rv.is_solvable(), cv.is_solvable(), "w0={w0}");
        }
    }

    #[test]
    fn empty_scheme_detection() {
        // Avoiding the empty prefix forbids everything.
        let l = regular_avoid_prefix(&GammaWord::empty());
        assert!(l.is_empty());
        assert!(l.sample_member().is_none());
        // S1 is nonempty and its sample is a member.
        let m = regular_s1().sample_member().unwrap();
        assert!(regular_s1().contains(&m));
    }

    #[test]
    fn intersection_combines_constraints() {
        // Fair ∩ T_White: fair scenarios that only ever drop White.
        let l = regular_fair().intersect(&regular_t(Role::White));
        assert!(l.contains(&sc("(-)")));
        assert!(l.contains(&sc("(w-)")));
        assert!(!l.contains(&sc("(w)")), "unfair");
        assert!(!l.contains(&sc("(b-)")), "drops Black");
        let m = l.sample_member().unwrap();
        assert!(l.contains(&m));
    }

    #[test]
    fn difference_obligation_excludes_exactly_the_lasso() {
        let o = difference_obligation(&sc("w(b-)"));
        let lassos = minobs_core::scenario::enumerate_gamma_lassos(2, 2);
        for s in &lassos {
            let reg = RegularScheme::new("test", vec![o.clone()]);
            assert_eq!(reg.contains(s), *s != sc("w(b-)"), "{s}");
        }
    }
}
