//! # minobs-omega — ω-automata machinery for omission schemes
//!
//! The paper remarks that "all communication schemes we are aware of are
//! regular". This crate makes that observation operational: it represents
//! omission schemes as **conjunctions of deterministic ω-automata
//! obligations** (Büchi or co-Büchi accepted), and decides the Theorem
//! III.8 conditions for *any* such scheme by automata-theoretic emptiness:
//!
//! * membership of ultimately periodic scenarios ([`auto`]);
//! * emptiness of obligation products with lasso witness extraction
//!   ([`product`]) — the product mixes Büchi obligations ("visit F
//!   infinitely often") and co-Büchi obligations ("eventually avoid G"),
//!   searched via SCC analysis of the co-Büchi-clean subgraph;
//! * the scheme algebra and a library of classic schemes as automata
//!   ([`schemes`]);
//! * pair-alphabet automata over `Γ × Γ` encoding the special-pair
//!   relation, so condition III.8.ii becomes a product emptiness query
//!   ([`pairs`]).
//!
//! Determinism keeps complementation trivial (flip Büchi ↔ co-Büchi) and
//! every query exact. Conjunction-of-obligations is closed under all the
//! constructions the scheme library needs, and complements distribute into
//! disjunctions handled query-side.
//!
//! ```
//! use minobs_omega::schemes::{regular_s1, decide_regular};
//!
//! let s1 = regular_s1();
//! let verdict = decide_regular(&s1);
//! assert!(verdict.is_solvable());
//! ```

pub mod algebra;
pub mod auto;
pub mod pairs;
pub mod product;
pub mod schemes;

pub use algebra::{intersect_buchi, intersect_cobuchi, union_buchi, union_cobuchi};
pub use auto::{Acceptance, DetAutomaton, Obligation};
pub use product::{find_accepted_lasso, LassoWitness};
pub use schemes::{decide_regular, RegularScheme};
