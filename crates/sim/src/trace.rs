//! Execution statistics.

/// Per-run counters collected by the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Messages handed to the environment.
    pub messages_sent: usize,
    /// Messages delivered.
    pub messages_delivered: usize,
    /// Messages killed by the adversary.
    pub messages_dropped: usize,
    /// Messages addressed to non-neighbors (discarded, protocol bug).
    pub misaddressed: usize,
    /// The largest omission set applied in any round.
    pub max_drops_per_round: usize,
}

impl RunStats {
    /// Delivered / sent, in `[0, 1]`; 1.0 for a silent run.
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation() {
        let s = RunStats {
            rounds: 3,
            messages_sent: 10,
            messages_delivered: 7,
            messages_dropped: 3,
            misaddressed: 0,
            max_drops_per_round: 2,
        };
        assert_eq!(s.messages_delivered + s.messages_dropped, s.messages_sent);
        assert!((s.delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn silent_run_ratio_is_one() {
        assert_eq!(RunStats::default().delivery_ratio(), 1.0);
    }
}
