//! Omission adversaries — the executable side of omission schemes.
//!
//! An adversary realizes one scenario of a scheme, one round at a time: it
//! sees the pending directed edges and returns the subset to kill. The
//! engine applies the omissions blindly; whether the resulting infinite
//! behaviour stays inside a given scheme is the adversary's contract
//! (checked by the `O_f` budget wrapper and the tests).

use minobs_core::letter::{GammaLetter, Letter, Role};
use minobs_core::scenario::Scenario;
use minobs_graphs::{CutPartition, DirectedEdge};
use rand::seq::SliceRandom;
use rand::Rng;

/// Selects, per round, the directed edges whose messages are lost.
pub trait Adversary {
    /// The omission set for `round`, given the messages actually in
    /// flight. Must be a subset of `pending` to have any effect; returning
    /// edges not in flight is allowed and harmless (the paper's letters
    /// also name losses of messages that were never sent).
    fn select_drops(&mut self, round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge>;
}

/// The fault-free adversary: `S0` at network scale.
#[derive(Debug, Clone, Default)]
pub struct NoFault;

impl Adversary for NoFault {
    fn select_drops(&mut self, _round: usize, _pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        Vec::new()
    }
}

/// Drops up to `f` uniformly random in-flight messages per round — a
/// random scenario of the `O_f` scheme of Section V-A.
pub struct RandomOmissions<R: Rng> {
    /// The per-round budget `f`.
    pub f: usize,
    /// Randomness source.
    pub rng: R,
}

impl<R: Rng> RandomOmissions<R> {
    /// Builds the adversary.
    pub fn new(f: usize, rng: R) -> Self {
        RandomOmissions { f, rng }
    }
}

impl<R: Rng> Adversary for RandomOmissions<R> {
    fn select_drops(&mut self, _round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        let mut edges: Vec<DirectedEdge> = pending.to_vec();
        edges.shuffle(&mut self.rng);
        edges.truncate(self.f);
        edges
    }
}

/// Replays an explicit per-round script of omission sets.
#[derive(Debug, Clone)]
pub struct ScriptedAdversary {
    script: Vec<Vec<DirectedEdge>>,
    repeat: bool,
}

impl ScriptedAdversary {
    /// Plays the script once; later rounds are fault-free.
    pub fn once(script: Vec<Vec<DirectedEdge>>) -> Self {
        ScriptedAdversary {
            script,
            repeat: false,
        }
    }

    /// Replays the script cyclically forever.
    ///
    /// # Panics
    /// Panics on an empty script.
    pub fn repeating(script: Vec<Vec<DirectedEdge>>) -> Self {
        assert!(!script.is_empty(), "repeating script must be nonempty");
        ScriptedAdversary {
            script,
            repeat: true,
        }
    }
}

impl Adversary for ScriptedAdversary {
    fn select_drops(&mut self, round: usize, _pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        if self.script.is_empty() {
            return Vec::new();
        }
        if self.repeat {
            self.script[round % self.script.len()].clone()
        } else {
            self.script.get(round).cloned().unwrap_or_default()
        }
    }
}

/// The `Γ_C` cut adversary of Theorem V.1's proof, scripted by a
/// two-process scenario through the bijection `ρ`.
///
/// Per round, the scenario's letter maps to a letter of `Γ_C`:
///
/// * `Full` → no message is lost (`C_⇄`);
/// * `DropWhite` → all cut messages from the `A` side (White's avatar) to
///   the `B` side are lost (`C_→` with the `A→B` arcs removed);
/// * `DropBlack` → all cut messages `B → A` are lost;
/// * `DropBoth` → both directions of the cut are lost (outside `Γ_C`;
///   available for probing).
#[derive(Debug, Clone)]
pub struct CutAdversary {
    a_to_b: Vec<DirectedEdge>,
    b_to_a: Vec<DirectedEdge>,
    scenario: Scenario,
}

impl CutAdversary {
    /// Builds the adversary from a cut partition and a driving scenario.
    pub fn new(partition: &CutPartition, scenario: Scenario) -> Self {
        let a_to_b = partition
            .cut
            .iter()
            .map(|&(a, b)| DirectedEdge::new(a, b))
            .collect();
        let b_to_a = partition
            .cut
            .iter()
            .map(|&(a, b)| DirectedEdge::new(b, a))
            .collect();
        CutAdversary {
            a_to_b,
            b_to_a,
            scenario,
        }
    }

    /// The omission set for a given `Γ_C`-letter.
    pub fn drops_for_letter(&self, letter: Letter) -> Vec<DirectedEdge> {
        match letter {
            Letter::Full => Vec::new(),
            Letter::DropWhite => self.a_to_b.clone(),
            Letter::DropBlack => self.b_to_a.clone(),
            Letter::DropBoth => {
                let mut v = self.a_to_b.clone();
                v.extend(self.b_to_a.iter().copied());
                v
            }
        }
    }

    /// The per-round omission budget this adversary needs: `f = |C|`.
    pub fn f(&self) -> usize {
        self.a_to_b.len()
    }
}

impl Adversary for CutAdversary {
    fn select_drops(&mut self, round: usize, _pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        self.drops_for_letter(self.scenario.letter_at(round))
    }
}

/// An adaptive cut adversary: each round kills the whole cut in the
/// direction that currently carries *more* in-flight messages (ties go
/// `A→B`). Stays within `Γ_C`, hence within `O_f` for `f = c(G)`.
#[derive(Debug, Clone)]
pub struct GreedyCutAdversary {
    a_to_b: Vec<DirectedEdge>,
    b_to_a: Vec<DirectedEdge>,
}

impl GreedyCutAdversary {
    /// Builds the adversary from a cut partition.
    pub fn new(partition: &CutPartition) -> Self {
        GreedyCutAdversary {
            a_to_b: partition
                .cut
                .iter()
                .map(|&(a, b)| DirectedEdge::new(a, b))
                .collect(),
            b_to_a: partition
                .cut
                .iter()
                .map(|&(a, b)| DirectedEdge::new(b, a))
                .collect(),
        }
    }
}

impl Adversary for GreedyCutAdversary {
    fn select_drops(&mut self, _round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        let count = |dir: &[DirectedEdge]| pending.iter().filter(|e| dir.contains(e)).count();
        if count(&self.a_to_b) >= count(&self.b_to_a) {
            self.a_to_b.clone()
        } else {
            self.b_to_a.clone()
        }
    }
}

/// One recorded breach of an `O_f` budget contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetViolation {
    /// The round in which the budget was exceeded.
    pub round: usize,
    /// Effective omissions requested (`|drops ∩ pending|`, set-wise).
    pub requested: usize,
    /// The budget `f` that was in force.
    pub budget: usize,
}

impl std::fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "adversary exceeded O_{} budget at round {}: {} effective drops",
            self.budget, self.round, self.requested
        )
    }
}

/// Wraps an adversary with the `O_f` budget contract: every round where
/// the *effective* omission set (`drops ∩ pending`, counted set-wise)
/// exceeds `f` is recorded as a structured [`BudgetViolation`] instead of
/// panicking or silently truncating. The drops pass through unmodified so
/// harnesses can observe the consequences and assert on
/// [`BudgetChecked::violations`] afterwards.
pub struct BudgetChecked<A: Adversary> {
    inner: A,
    f: usize,
    violations: Vec<BudgetViolation>,
}

impl<A: Adversary> BudgetChecked<A> {
    /// Wraps `inner` with budget `f`.
    pub fn new(inner: A, f: usize) -> Self {
        BudgetChecked {
            inner,
            f,
            violations: Vec::new(),
        }
    }

    /// All budget breaches recorded so far, in round order.
    pub fn violations(&self) -> &[BudgetViolation] {
        &self.violations
    }

    /// The first breach, if any.
    pub fn first_violation(&self) -> Option<BudgetViolation> {
        self.violations.first().copied()
    }

    /// Unwraps, yielding the inner adversary and the recorded breaches.
    pub fn into_parts(self) -> (A, Vec<BudgetViolation>) {
        (self.inner, self.violations)
    }
}

impl<A: Adversary> Adversary for BudgetChecked<A> {
    fn select_drops(&mut self, round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        let drops = self.inner.select_drops(round, pending);
        let effective: std::collections::BTreeSet<&DirectedEdge> =
            drops.iter().filter(|e| pending.contains(e)).collect();
        if effective.len() > self.f {
            self.violations.push(BudgetViolation {
                round,
                requested: effective.len(),
                budget: self.f,
            });
        }
        drops
    }
}

/// A crash adversary: from `crash_round` on, every message sent *by*
/// `victim` is lost — the network-scale `C1` of Example II.10.
#[derive(Debug, Clone)]
pub struct CrashAdversary {
    /// The crashing node.
    pub victim: usize,
    /// First silent round.
    pub crash_round: usize,
}

impl Adversary for CrashAdversary {
    fn select_drops(&mut self, round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        if round < self.crash_round {
            return Vec::new();
        }
        pending
            .iter()
            .copied()
            .filter(|e| e.from == self.victim)
            .collect()
    }
}

/// Maps a two-process role to its cut-partition avatar, for tests and the
/// reduction machinery: White emulates side `A`, Black side `B`.
pub fn role_direction(role: Role) -> GammaLetter {
    GammaLetter::dropping(role)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_graphs::{cut_partition, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn edges(list: &[(usize, usize)]) -> Vec<DirectedEdge> {
        list.iter().map(|&(a, b)| DirectedEdge::new(a, b)).collect()
    }

    #[test]
    fn no_fault_drops_nothing() {
        let mut adv = NoFault;
        assert!(adv.select_drops(0, &edges(&[(0, 1), (1, 0)])).is_empty());
    }

    #[test]
    fn random_respects_budget() {
        let mut adv = RandomOmissions::new(2, StdRng::seed_from_u64(7));
        let pending = edges(&[(0, 1), (1, 0), (1, 2), (2, 1)]);
        for round in 0..50 {
            let drops = adv.select_drops(round, &pending);
            assert!(drops.len() <= 2);
            assert!(drops.iter().all(|e| pending.contains(e)));
        }
    }

    #[test]
    fn scripted_once_then_silent() {
        let mut adv = ScriptedAdversary::once(vec![edges(&[(0, 1)]), edges(&[(1, 0)])]);
        assert_eq!(adv.select_drops(0, &[]), edges(&[(0, 1)]));
        assert_eq!(adv.select_drops(1, &[]), edges(&[(1, 0)]));
        assert!(adv.select_drops(2, &[]).is_empty());
    }

    #[test]
    fn scripted_repeating_cycles() {
        let mut adv = ScriptedAdversary::repeating(vec![edges(&[(0, 1)]), Vec::new()]);
        assert_eq!(adv.select_drops(0, &[]), edges(&[(0, 1)]));
        assert!(adv.select_drops(1, &[]).is_empty());
        assert_eq!(adv.select_drops(2, &[]), edges(&[(0, 1)]));
    }

    #[test]
    fn cut_adversary_follows_scenario() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let mut adv = CutAdversary::new(&p, "w b (-)".replace(' ', "").parse().unwrap());
        let d0 = adv.select_drops(0, &[]);
        assert_eq!(d0.len(), 2, "DropWhite kills all A→B cut arcs");
        assert!(d0.iter().all(|e| p.side_a.contains(&e.from) && p.side_b.contains(&e.to)));
        let d1 = adv.select_drops(1, &[]);
        assert!(d1.iter().all(|e| p.side_b.contains(&e.from)));
        assert!(adv.select_drops(2, &[]).is_empty());
        assert_eq!(adv.f(), 2);
    }

    #[test]
    fn greedy_cut_picks_busier_direction() {
        let g = generators::barbell(3, 1);
        let p = cut_partition(&g).unwrap();
        let (a1, b1) = p.representatives();
        let mut adv = GreedyCutAdversary::new(&p);
        // Only B→A in flight: kill that direction.
        let pending = vec![DirectedEdge::new(b1, a1)];
        let drops = adv.select_drops(0, &pending);
        assert_eq!(drops, vec![DirectedEdge::new(b1, a1)]);
    }

    #[test]
    fn budget_checker_allows_within_budget() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let adv = CutAdversary::new(&p, "(w)".parse().unwrap());
        let mut checked = BudgetChecked::new(adv, 2);
        let pending = edges(&[(0, 3)]);
        let _ = checked.select_drops(0, &pending);
        assert!(checked.violations().is_empty());
        assert_eq!(checked.first_violation(), None);
    }

    #[test]
    fn budget_checker_records_structured_violation() {
        let script = ScriptedAdversary::repeating(vec![edges(&[(0, 1), (1, 0)])]);
        let mut checked = BudgetChecked::new(script, 1);
        let pending = edges(&[(0, 1), (1, 0)]);
        // The drops pass through unmodified — no silent truncation.
        let drops = checked.select_drops(0, &pending);
        assert_eq!(drops.len(), 2);
        assert_eq!(
            checked.first_violation(),
            Some(BudgetViolation {
                round: 0,
                requested: 2,
                budget: 1,
            })
        );
        // A second offending round appends a second record.
        let _ = checked.select_drops(1, &pending);
        assert_eq!(checked.violations().len(), 2);
        assert_eq!(checked.violations()[1].round, 1);
    }

    #[test]
    fn budget_checker_ignores_edges_not_in_flight() {
        // Naming edges with no message in flight is legal (the paper's
        // letters also name losses of unsent messages): only the
        // effective set drops ∩ pending counts against the budget.
        let script = ScriptedAdversary::repeating(vec![edges(&[(0, 1), (1, 0), (2, 3)])]);
        let mut checked = BudgetChecked::new(script, 1);
        let _ = checked.select_drops(0, &edges(&[(0, 1)]));
        assert!(checked.violations().is_empty());
    }

    #[test]
    fn crash_adversary_silences_victim() {
        let mut adv = CrashAdversary {
            victim: 1,
            crash_round: 2,
        };
        let pending = edges(&[(0, 1), (1, 0), (1, 2)]);
        assert!(adv.select_drops(0, &pending).is_empty());
        assert!(adv.select_drops(1, &pending).is_empty());
        let drops = adv.select_drops(2, &pending);
        assert_eq!(drops, edges(&[(1, 0), (1, 2)]));
    }

    #[test]
    fn crash_adversary_onset_mid_run_kills_only_later_rounds() {
        // Crash onset mid-run on an evolving pending set: rounds before
        // the onset are untouched even when the victim is chatty, and
        // from the onset on exactly the victim's sends die — others'
        // messages always survive.
        let mut adv = CrashAdversary {
            victim: 0,
            crash_round: 3,
        };
        for round in 0..6 {
            // Pending evolves: the victim sends on even rounds only.
            let pending = if round % 2 == 0 {
                edges(&[(0, 1), (1, 0), (2, 1)])
            } else {
                edges(&[(1, 0), (2, 1)])
            };
            let drops = adv.select_drops(round, &pending);
            if round < 3 {
                assert!(drops.is_empty(), "round {round}: pre-onset must be silent");
            } else if round % 2 == 0 {
                assert_eq!(drops, edges(&[(0, 1)]), "round {round}");
            } else {
                assert!(drops.is_empty(), "round {round}: victim sent nothing");
            }
        }
    }

    #[test]
    fn crash_adversary_empty_pending_round_is_harmless() {
        let mut adv = CrashAdversary {
            victim: 2,
            crash_round: 0,
        };
        // Post-onset with nothing in flight: no drops, no panic.
        assert!(adv.select_drops(0, &[]).is_empty());
        assert!(adv.select_drops(5, &[]).is_empty());
    }

    #[test]
    fn greedy_cut_never_exceeds_cut_width() {
        let g = generators::barbell(4, 3);
        let p = cut_partition(&g).unwrap();
        let width = p.f();
        let mut adv = GreedyCutAdversary::new(&p);
        // Stress with many pending shapes, including duplicates of cut
        // arcs and plenty of non-cut traffic: the omission set is always
        // one direction of the cut, so never more than the cut width.
        let mut rng = StdRng::seed_from_u64(42);
        let all_arcs: Vec<DirectedEdge> = g
            .edges()
            .iter()
            .flat_map(|e| e.directions())
            .collect();
        for round in 0..100 {
            let mut pending = all_arcs.clone();
            pending.shuffle(&mut rng);
            pending.truncate(1 + round % all_arcs.len());
            let drops = adv.select_drops(round, &pending);
            assert!(drops.len() <= width, "round {round}: {} > {width}", drops.len());
            let distinct: std::collections::BTreeSet<_> = drops.iter().collect();
            assert_eq!(distinct.len(), drops.len(), "no duplicate arcs");
        }
    }

    #[test]
    fn greedy_cut_empty_pending_still_picks_a_direction() {
        // With nothing in flight both directions count 0; ties go A→B.
        // The returned arcs are then all ineffective — legal, harmless.
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let mut adv = GreedyCutAdversary::new(&p);
        let drops = adv.select_drops(0, &[]);
        assert_eq!(drops.len(), p.f());
        assert!(drops
            .iter()
            .all(|e| p.side_a.contains(&e.from) && p.side_b.contains(&e.to)));
    }
}
