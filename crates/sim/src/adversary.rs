//! Omission adversaries — the executable side of omission schemes.
//!
//! An adversary realizes one scenario of a scheme, one round at a time: it
//! sees the pending directed edges and returns the subset to kill. The
//! engine applies the omissions blindly; whether the resulting infinite
//! behaviour stays inside a given scheme is the adversary's contract
//! (checked by the `O_f` budget wrapper and the tests).

use minobs_core::letter::{GammaLetter, Letter, Role};
use minobs_core::scenario::Scenario;
use minobs_graphs::{CutPartition, DirectedEdge};
use rand::seq::SliceRandom;
use rand::Rng;

/// Selects, per round, the directed edges whose messages are lost.
pub trait Adversary {
    /// The omission set for `round`, given the messages actually in
    /// flight. Must be a subset of `pending` to have any effect; returning
    /// edges not in flight is allowed and harmless (the paper's letters
    /// also name losses of messages that were never sent).
    fn select_drops(&mut self, round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge>;
}

/// The fault-free adversary: `S0` at network scale.
#[derive(Debug, Clone, Default)]
pub struct NoFault;

impl Adversary for NoFault {
    fn select_drops(&mut self, _round: usize, _pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        Vec::new()
    }
}

/// Drops up to `f` uniformly random in-flight messages per round — a
/// random scenario of the `O_f` scheme of Section V-A.
pub struct RandomOmissions<R: Rng> {
    /// The per-round budget `f`.
    pub f: usize,
    /// Randomness source.
    pub rng: R,
}

impl<R: Rng> RandomOmissions<R> {
    /// Builds the adversary.
    pub fn new(f: usize, rng: R) -> Self {
        RandomOmissions { f, rng }
    }
}

impl<R: Rng> Adversary for RandomOmissions<R> {
    fn select_drops(&mut self, _round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        let mut edges: Vec<DirectedEdge> = pending.to_vec();
        edges.shuffle(&mut self.rng);
        edges.truncate(self.f);
        edges
    }
}

/// Replays an explicit per-round script of omission sets.
#[derive(Debug, Clone)]
pub struct ScriptedAdversary {
    script: Vec<Vec<DirectedEdge>>,
    repeat: bool,
}

impl ScriptedAdversary {
    /// Plays the script once; later rounds are fault-free.
    pub fn once(script: Vec<Vec<DirectedEdge>>) -> Self {
        ScriptedAdversary {
            script,
            repeat: false,
        }
    }

    /// Replays the script cyclically forever.
    ///
    /// # Panics
    /// Panics on an empty script.
    pub fn repeating(script: Vec<Vec<DirectedEdge>>) -> Self {
        assert!(!script.is_empty(), "repeating script must be nonempty");
        ScriptedAdversary {
            script,
            repeat: true,
        }
    }
}

impl Adversary for ScriptedAdversary {
    fn select_drops(&mut self, round: usize, _pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        if self.script.is_empty() {
            return Vec::new();
        }
        if self.repeat {
            self.script[round % self.script.len()].clone()
        } else {
            self.script.get(round).cloned().unwrap_or_default()
        }
    }
}

/// The `Γ_C` cut adversary of Theorem V.1's proof, scripted by a
/// two-process scenario through the bijection `ρ`.
///
/// Per round, the scenario's letter maps to a letter of `Γ_C`:
///
/// * `Full` → no message is lost (`C_⇄`);
/// * `DropWhite` → all cut messages from the `A` side (White's avatar) to
///   the `B` side are lost (`C_→` with the `A→B` arcs removed);
/// * `DropBlack` → all cut messages `B → A` are lost;
/// * `DropBoth` → both directions of the cut are lost (outside `Γ_C`;
///   available for probing).
#[derive(Debug, Clone)]
pub struct CutAdversary {
    a_to_b: Vec<DirectedEdge>,
    b_to_a: Vec<DirectedEdge>,
    scenario: Scenario,
}

impl CutAdversary {
    /// Builds the adversary from a cut partition and a driving scenario.
    pub fn new(partition: &CutPartition, scenario: Scenario) -> Self {
        let a_to_b = partition
            .cut
            .iter()
            .map(|&(a, b)| DirectedEdge::new(a, b))
            .collect();
        let b_to_a = partition
            .cut
            .iter()
            .map(|&(a, b)| DirectedEdge::new(b, a))
            .collect();
        CutAdversary {
            a_to_b,
            b_to_a,
            scenario,
        }
    }

    /// The omission set for a given `Γ_C`-letter.
    pub fn drops_for_letter(&self, letter: Letter) -> Vec<DirectedEdge> {
        match letter {
            Letter::Full => Vec::new(),
            Letter::DropWhite => self.a_to_b.clone(),
            Letter::DropBlack => self.b_to_a.clone(),
            Letter::DropBoth => {
                let mut v = self.a_to_b.clone();
                v.extend(self.b_to_a.iter().copied());
                v
            }
        }
    }

    /// The per-round omission budget this adversary needs: `f = |C|`.
    pub fn f(&self) -> usize {
        self.a_to_b.len()
    }
}

impl Adversary for CutAdversary {
    fn select_drops(&mut self, round: usize, _pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        self.drops_for_letter(self.scenario.letter_at(round))
    }
}

/// An adaptive cut adversary: each round kills the whole cut in the
/// direction that currently carries *more* in-flight messages (ties go
/// `A→B`). Stays within `Γ_C`, hence within `O_f` for `f = c(G)`.
#[derive(Debug, Clone)]
pub struct GreedyCutAdversary {
    a_to_b: Vec<DirectedEdge>,
    b_to_a: Vec<DirectedEdge>,
}

impl GreedyCutAdversary {
    /// Builds the adversary from a cut partition.
    pub fn new(partition: &CutPartition) -> Self {
        GreedyCutAdversary {
            a_to_b: partition
                .cut
                .iter()
                .map(|&(a, b)| DirectedEdge::new(a, b))
                .collect(),
            b_to_a: partition
                .cut
                .iter()
                .map(|&(a, b)| DirectedEdge::new(b, a))
                .collect(),
        }
    }
}

impl Adversary for GreedyCutAdversary {
    fn select_drops(&mut self, _round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        let count = |dir: &[DirectedEdge]| pending.iter().filter(|e| dir.contains(e)).count();
        if count(&self.a_to_b) >= count(&self.b_to_a) {
            self.a_to_b.clone()
        } else {
            self.b_to_a.clone()
        }
    }
}

/// Wraps an adversary with the `O_f` budget: asserts at most `f` drops per
/// round (panics on violation — failure injection for scheme contracts).
pub struct BudgetChecked<A: Adversary> {
    inner: A,
    f: usize,
}

impl<A: Adversary> BudgetChecked<A> {
    /// Wraps `inner` with budget `f`.
    pub fn new(inner: A, f: usize) -> Self {
        BudgetChecked { inner, f }
    }
}

impl<A: Adversary> Adversary for BudgetChecked<A> {
    fn select_drops(&mut self, round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        let drops = self.inner.select_drops(round, pending);
        let effective = drops.iter().filter(|e| pending.contains(e)).count();
        assert!(
            effective <= self.f,
            "adversary exceeded O_{} budget at round {round}: {effective} drops",
            self.f
        );
        drops
    }
}

/// A crash adversary: from `crash_round` on, every message sent *by*
/// `victim` is lost — the network-scale `C1` of Example II.10.
#[derive(Debug, Clone)]
pub struct CrashAdversary {
    /// The crashing node.
    pub victim: usize,
    /// First silent round.
    pub crash_round: usize,
}

impl Adversary for CrashAdversary {
    fn select_drops(&mut self, round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        if round < self.crash_round {
            return Vec::new();
        }
        pending
            .iter()
            .copied()
            .filter(|e| e.from == self.victim)
            .collect()
    }
}

/// Maps a two-process role to its cut-partition avatar, for tests and the
/// reduction machinery: White emulates side `A`, Black side `B`.
pub fn role_direction(role: Role) -> GammaLetter {
    GammaLetter::dropping(role)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_graphs::{cut_partition, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn edges(list: &[(usize, usize)]) -> Vec<DirectedEdge> {
        list.iter().map(|&(a, b)| DirectedEdge::new(a, b)).collect()
    }

    #[test]
    fn no_fault_drops_nothing() {
        let mut adv = NoFault;
        assert!(adv.select_drops(0, &edges(&[(0, 1), (1, 0)])).is_empty());
    }

    #[test]
    fn random_respects_budget() {
        let mut adv = RandomOmissions::new(2, StdRng::seed_from_u64(7));
        let pending = edges(&[(0, 1), (1, 0), (1, 2), (2, 1)]);
        for round in 0..50 {
            let drops = adv.select_drops(round, &pending);
            assert!(drops.len() <= 2);
            assert!(drops.iter().all(|e| pending.contains(e)));
        }
    }

    #[test]
    fn scripted_once_then_silent() {
        let mut adv = ScriptedAdversary::once(vec![edges(&[(0, 1)]), edges(&[(1, 0)])]);
        assert_eq!(adv.select_drops(0, &[]), edges(&[(0, 1)]));
        assert_eq!(adv.select_drops(1, &[]), edges(&[(1, 0)]));
        assert!(adv.select_drops(2, &[]).is_empty());
    }

    #[test]
    fn scripted_repeating_cycles() {
        let mut adv = ScriptedAdversary::repeating(vec![edges(&[(0, 1)]), Vec::new()]);
        assert_eq!(adv.select_drops(0, &[]), edges(&[(0, 1)]));
        assert!(adv.select_drops(1, &[]).is_empty());
        assert_eq!(adv.select_drops(2, &[]), edges(&[(0, 1)]));
    }

    #[test]
    fn cut_adversary_follows_scenario() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let mut adv = CutAdversary::new(&p, "w b (-)".replace(' ', "").parse().unwrap());
        let d0 = adv.select_drops(0, &[]);
        assert_eq!(d0.len(), 2, "DropWhite kills all A→B cut arcs");
        assert!(d0.iter().all(|e| p.side_a.contains(&e.from) && p.side_b.contains(&e.to)));
        let d1 = adv.select_drops(1, &[]);
        assert!(d1.iter().all(|e| p.side_b.contains(&e.from)));
        assert!(adv.select_drops(2, &[]).is_empty());
        assert_eq!(adv.f(), 2);
    }

    #[test]
    fn greedy_cut_picks_busier_direction() {
        let g = generators::barbell(3, 1);
        let p = cut_partition(&g).unwrap();
        let (a1, b1) = p.representatives();
        let mut adv = GreedyCutAdversary::new(&p);
        // Only B→A in flight: kill that direction.
        let pending = vec![DirectedEdge::new(b1, a1)];
        let drops = adv.select_drops(0, &pending);
        assert_eq!(drops, vec![DirectedEdge::new(b1, a1)]);
    }

    #[test]
    fn budget_checker_allows_within_budget() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let adv = CutAdversary::new(&p, "(w)".parse().unwrap());
        let mut checked = BudgetChecked::new(adv, 2);
        let pending = edges(&[(0, 3)]);
        let _ = checked.select_drops(0, &pending);
    }

    #[test]
    #[should_panic(expected = "exceeded O_1 budget")]
    fn budget_checker_panics_on_violation() {
        let script = ScriptedAdversary::repeating(vec![edges(&[(0, 1), (1, 0)])]);
        let mut checked = BudgetChecked::new(script, 1);
        let pending = edges(&[(0, 1), (1, 0)]);
        let _ = checked.select_drops(0, &pending);
    }

    #[test]
    fn crash_adversary_silences_victim() {
        let mut adv = CrashAdversary {
            victim: 1,
            crash_round: 2,
        };
        let pending = edges(&[(0, 1), (1, 0), (1, 2)]);
        assert!(adv.select_drops(0, &pending).is_empty());
        assert!(adv.select_drops(1, &pending).is_empty());
        let drops = adv.select_drops(2, &pending);
        assert_eq!(drops, edges(&[(1, 0), (1, 2)]));
    }
}
