//! # minobs-sim — synchronous network execution under omission faults
//!
//! The substrate for Section V's experiments: a synchronous message-passing
//! network on an arbitrary [`minobs_graphs::Graph`], where each round every
//! node sends at most one message per incident edge, an **adversary**
//! selects which directed edges lose their message (the round's letter from
//! `Σ_G`), survivors are delivered, and every node steps its state machine.
//!
//! * [`network`] — the engine: [`network::NodeProtocol`],
//!   [`network::SyncNetwork`], consensus auditing over `n` nodes;
//! * [`adversary`] — the fault environments: no-fault, random-`f` (the
//!   `O_f` scheme), the `Γ_C` cut adversary scripted by a two-process
//!   scenario through `ρ⁻¹`, adaptive cut strategies, and explicit scripts;
//! * [`trace`] — per-run statistics and invariant audits.
//!
//! The two-process engine of `minobs-core` is the `n = 2` special case;
//! [`adversary::CutAdversary`] is exactly the bridge the paper's proof of
//! Theorem V.1 walks across.
//!
//! ```
//! use minobs_graphs::{cut_partition, generators};
//! use minobs_sim::adversary::CutAdversary;
//!
//! // The Γ_C adversary on a barbell graph, scripted by a two-process
//! // scenario: DropWhite letters silence all A→B cut arcs.
//! let g = generators::barbell(4, 2);
//! let p = cut_partition(&g).unwrap();
//! let mut adv = CutAdversary::new(&p, "(w)".parse().unwrap());
//! use minobs_sim::Adversary;
//! let drops = adv.select_drops(0, &[]);
//! assert_eq!(drops.len(), p.f());
//! ```

pub mod adversary;
pub mod network;
pub mod parallel;
pub mod trace;

pub use adversary::{Adversary, CutAdversary, NoFault, RandomOmissions, ScriptedAdversary};
pub use network::{run_network, NetOutcome, NetVerdict, NodeProtocol, SyncNetwork};
pub use parallel::run_network_parallel;
pub use trace::RunStats;
