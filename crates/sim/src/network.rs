//! The synchronous network engine.
//!
//! Round structure (Section II-F generalized to graphs, Section V-A):
//! every live node hands the engine one optional message per incident
//! edge; the adversary inspects the pending directed edges and picks the
//! omission set for the round (a letter of `Σ_G`); surviving messages are
//! delivered; every live node advances.

use crate::adversary::Adversary;
use crate::trace::RunStats;
use minobs_graphs::{DirectedEdge, Graph};
use minobs_obs::{MessageStatus, NullRecorder, Recorder, RoundCounts, RoundTimer, SpanGuard, SpanIds};
use std::collections::BTreeSet;

/// A per-node synchronous state machine.
pub trait NodeProtocol {
    /// The message type.
    type Msg: Clone;

    /// This node's proposed value.
    fn input(&self) -> u64;

    /// Messages to send this round, keyed by *neighbor* id. The engine
    /// drops (and counts) any message addressed to a non-neighbor.
    fn send(&self, round: usize) -> Vec<(usize, Self::Msg)>;

    /// Consumes the round's delivered messages (sender id, payload) and
    /// advances one round.
    fn advance(&mut self, round: usize, received: Vec<(usize, Self::Msg)>);

    /// The decided value, once decided.
    fn decision(&self) -> Option<u64>;

    /// `true` once halted: the node stops sending and stepping.
    fn halted(&self) -> bool {
        self.decision().is_some()
    }
}

/// The consensus audit over all nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetVerdict {
    /// Everyone decided the same value; Validity holds.
    Consensus(u64),
    /// Two nodes decided differently.
    Disagreement {
        /// A pair of distinct decided values observed.
        values: (u64, u64),
    },
    /// All inputs equalled `proposed` but some node decided `decided`.
    ValidityViolation {
        /// The common proposal.
        proposed: u64,
        /// The offending decision.
        decided: u64,
    },
    /// Some node was still undecided at the round budget.
    Undecided {
        /// How many nodes had not decided.
        undecided: usize,
    },
}

impl NetVerdict {
    /// `true` iff consensus was reached.
    pub fn is_consensus(&self) -> bool {
        matches!(self, NetVerdict::Consensus(_))
    }

    /// Unwraps the consensus value.
    ///
    /// # Panics
    /// Panics on any other verdict.
    pub fn expect_consensus(&self) -> u64 {
        match self {
            NetVerdict::Consensus(v) => *v,
            other => panic!("expected consensus, got {other:?}"),
        }
    }
}

/// The result of a network run.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// Per-node decisions.
    pub decisions: Vec<Option<u64>>,
    /// The audit.
    pub verdict: NetVerdict,
    /// Execution statistics.
    pub stats: RunStats,
}

/// The engine itself; usually driven through [`run_network`].
pub struct SyncNetwork<'g, P: NodeProtocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    round: usize,
    stats: RunStats,
    span_ids: SpanIds,
}

impl<'g, P: NodeProtocol> SyncNetwork<'g, P> {
    /// Builds an engine over `graph` with one protocol instance per node.
    ///
    /// # Panics
    /// Panics when the node count does not match the graph.
    pub fn new(graph: &'g Graph, nodes: Vec<P>) -> Self {
        assert_eq!(
            nodes.len(),
            graph.vertex_count(),
            "one protocol instance per vertex"
        );
        SyncNetwork {
            graph,
            nodes,
            round: 0,
            stats: RunStats::default(),
            span_ids: SpanIds::new(),
        }
    }

    /// The number of completed rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Read access to the nodes.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// `true` once every node has halted.
    pub fn all_halted(&self) -> bool {
        self.nodes.iter().all(|n| n.halted())
    }

    /// Executes one round under the adversary. Returns the omission set
    /// actually applied.
    pub fn step(&mut self, adversary: &mut dyn Adversary) -> Vec<DirectedEdge> {
        self.step_with_recorder(adversary, &mut NullRecorder)
    }

    /// [`SyncNetwork::step`] with structured observations delivered to
    /// `recorder`. Per-message events and round timing are built only
    /// when `recorder.enabled()`.
    pub fn step_with_recorder<R: Recorder + ?Sized>(
        &mut self,
        adversary: &mut dyn Adversary,
        recorder: &mut R,
    ) -> Vec<DirectedEdge> {
        let observing = recorder.enabled();
        let timer = RoundTimer::start_if(observing);
        let decided_before: Vec<bool> = if observing {
            self.nodes.iter().map(|n| n.decision().is_some()).collect()
        } else {
            Vec::new()
        };
        let mut counts = RoundCounts::default();
        // 1. Collect sends from live nodes, validating targets.
        let send_span = SpanGuard::begin(recorder, &mut self.span_ids, self.round, None, "net_send");
        let mut pending: Vec<(DirectedEdge, P::Msg)> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if node.halted() {
                continue;
            }
            for (to, msg) in node.send(self.round) {
                if self.graph.has_edge(id, to) {
                    pending.push((DirectedEdge::new(id, to), msg));
                    counts.sent += 1;
                } else {
                    counts.misaddressed += 1;
                    if observing {
                        recorder.on_message(self.round, id, to, MessageStatus::Misaddressed);
                    }
                }
            }
        }
        if let Some(span) = send_span {
            span.end(recorder);
        }
        // 2. Adversary selects the omission set for this round.
        let pending_edges: Vec<DirectedEdge> = pending.iter().map(|(e, _)| *e).collect();
        let drops_list = adversary.select_drops(self.round, &pending_edges);
        let drops: BTreeSet<DirectedEdge> = drops_list.iter().copied().collect();
        // 3. Deliver survivors.
        let mut inboxes: Vec<Vec<(usize, P::Msg)>> = (0..self.nodes.len())
            .map(|_| Vec::new())
            .collect();
        // Stats count only effective omissions (drops ∩ pending): the
        // adversary may name edges with no message in flight (the paper's
        // letters also name losses of unsent messages), and those must not
        // inflate `max_drops_per_round` past the `O_f` budget accounting.
        let mut effective_drops: BTreeSet<DirectedEdge> = BTreeSet::new();
        for (edge, msg) in pending {
            let status = if drops.contains(&edge) {
                counts.dropped += 1;
                effective_drops.insert(edge);
                MessageStatus::Dropped
            } else {
                inboxes[edge.to].push((edge.from, msg));
                counts.delivered += 1;
                MessageStatus::Delivered
            };
            if observing {
                recorder.on_message(self.round, edge.from, edge.to, status);
            }
        }
        self.stats.max_drops_per_round =
            self.stats.max_drops_per_round.max(effective_drops.len());
        // Message conservation: every valid send this round is accounted
        // for exactly once. (Misaddressed sends never enter `sent`.)
        debug_assert_eq!(
            counts.sent,
            counts.delivered + counts.dropped,
            "round {}: sent messages must split into delivered + dropped",
            self.round
        );
        self.stats.messages_sent += counts.sent;
        self.stats.messages_delivered += counts.delivered;
        self.stats.messages_dropped += counts.dropped;
        self.stats.misaddressed += counts.misaddressed;
        // 4. Advance live nodes.
        let advance_span =
            SpanGuard::begin(recorder, &mut self.span_ids, self.round, None, "net_advance");
        for (id, node) in self.nodes.iter_mut().enumerate() {
            if !node.halted() {
                node.advance(self.round, std::mem::take(&mut inboxes[id]));
            }
        }
        if let Some(span) = advance_span {
            span.end(recorder);
        }
        if observing {
            for (id, node) in self.nodes.iter().enumerate() {
                if !decided_before[id] {
                    if let Some(value) = node.decision() {
                        recorder.on_decision(self.round, id, value);
                    }
                }
            }
        }
        recorder.on_round_end(self.round, counts, timer.elapsed_nanos());
        self.round += 1;
        self.stats.rounds = self.round;
        drops_list
    }

    /// Runs until all nodes halt or the round budget is hit; audits.
    pub fn run(self, adversary: &mut dyn Adversary, max_rounds: usize) -> NetOutcome {
        self.run_with_recorder(adversary, max_rounds, &mut NullRecorder)
    }

    /// [`SyncNetwork::run`] with structured observations delivered to
    /// `recorder`.
    pub fn run_with_recorder<R: Recorder + ?Sized>(
        mut self,
        adversary: &mut dyn Adversary,
        max_rounds: usize,
        recorder: &mut R,
    ) -> NetOutcome {
        let timer = RoundTimer::start_if(recorder.enabled());
        recorder.on_run_start("network", self.nodes.len(), 1);
        while self.round < max_rounds && !self.all_halted() {
            self.step_with_recorder(adversary, recorder);
        }
        let inputs: Vec<u64> = self.nodes.iter().map(|n| n.input()).collect();
        let decisions: Vec<Option<u64>> = self.nodes.iter().map(|n| n.decision()).collect();
        let verdict = audit_network(&inputs, &decisions);
        recorder.on_run_end(
            self.stats.rounds,
            RoundCounts {
                sent: self.stats.messages_sent,
                delivered: self.stats.messages_delivered,
                dropped: self.stats.messages_dropped,
                misaddressed: self.stats.misaddressed,
            },
            timer.elapsed_nanos(),
        );
        NetOutcome {
            decisions,
            verdict,
            stats: self.stats,
        }
    }
}

/// Convenience wrapper: build, run, audit.
pub fn run_network<P: NodeProtocol>(
    graph: &Graph,
    nodes: Vec<P>,
    adversary: &mut dyn Adversary,
    max_rounds: usize,
) -> NetOutcome {
    SyncNetwork::new(graph, nodes).run(adversary, max_rounds)
}

/// [`run_network`] with structured observations delivered to `recorder`.
pub fn run_network_with_recorder<P: NodeProtocol, R: Recorder + ?Sized>(
    graph: &Graph,
    nodes: Vec<P>,
    adversary: &mut dyn Adversary,
    max_rounds: usize,
    recorder: &mut R,
) -> NetOutcome {
    SyncNetwork::new(graph, nodes).run_with_recorder(adversary, max_rounds, recorder)
}

/// Audits Termination, Agreement, and Validity over `n` nodes.
pub fn audit_network(inputs: &[u64], decisions: &[Option<u64>]) -> NetVerdict {
    let undecided = decisions.iter().filter(|d| d.is_none()).count();
    if undecided > 0 {
        return NetVerdict::Undecided { undecided };
    }
    let values: Vec<u64> = decisions.iter().map(|d| d.unwrap()).collect();
    let first = values[0];
    if let Some(&other) = values.iter().find(|&&v| v != first) {
        return NetVerdict::Disagreement {
            values: (first, other),
        };
    }
    let all_same_input = inputs.iter().all(|&i| i == inputs[0]);
    if all_same_input && first != inputs[0] {
        return NetVerdict::ValidityViolation {
            proposed: inputs[0],
            decided: first,
        };
    }
    NetVerdict::Consensus(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoFault, ScriptedAdversary};
    use minobs_graphs::generators;

    /// A protocol that floods its input and decides the max seen after a
    /// fixed number of rounds — a minimal exerciser for the engine.
    #[derive(Debug, Clone)]
    struct MaxFlood {
        input: u64,
        best: u64,
        deadline: usize,
        decision: Option<u64>,
    }

    impl MaxFlood {
        fn new(input: u64, deadline: usize) -> Self {
            MaxFlood {
                input,
                best: input,
                deadline,
                decision: None,
            }
        }
    }

    impl NodeProtocol for MaxFlood {
        type Msg = u64;

        fn input(&self) -> u64 {
            self.input
        }

        fn send(&self, _round: usize) -> Vec<(usize, u64)> {
            Vec::new() // filled in by the harness below
        }

        fn advance(&mut self, round: usize, received: Vec<(usize, u64)>) {
            for (_, v) in received {
                self.best = self.best.max(v);
            }
            if round + 1 >= self.deadline {
                self.decision = Some(self.best);
            }
        }

        fn decision(&self) -> Option<u64> {
            self.decision
        }
    }

    /// MaxFlood with real broadcasting (needs the neighbor list).
    #[derive(Debug, Clone)]
    struct MaxFloodBcast {
        inner: MaxFlood,
        neighbors: Vec<usize>,
    }

    impl NodeProtocol for MaxFloodBcast {
        type Msg = u64;

        fn input(&self) -> u64 {
            self.inner.input
        }

        fn send(&self, _round: usize) -> Vec<(usize, u64)> {
            self.neighbors.iter().map(|&n| (n, self.inner.best)).collect()
        }

        fn advance(&mut self, round: usize, received: Vec<(usize, u64)>) {
            self.inner.advance(round, received);
        }

        fn decision(&self) -> Option<u64> {
            self.inner.decision
        }
    }

    fn bcast_nodes(g: &minobs_graphs::Graph, inputs: &[u64], deadline: usize) -> Vec<MaxFloodBcast> {
        inputs
            .iter()
            .enumerate()
            .map(|(id, &v)| MaxFloodBcast {
                inner: MaxFlood::new(v, deadline),
                neighbors: g.neighbors(id).to_vec(),
            })
            .collect()
    }

    #[test]
    fn fault_free_flood_reaches_consensus() {
        let g = generators::cycle(5);
        let inputs = [3, 1, 4, 1, 5];
        let nodes = bcast_nodes(&g, &inputs, 4);
        let out = run_network(&g, nodes, &mut NoFault, 10);
        assert_eq!(out.verdict, NetVerdict::Consensus(5));
        assert_eq!(out.stats.rounds, 4);
    }

    #[test]
    fn validity_on_uniform_inputs() {
        let g = generators::complete(4);
        let nodes = bcast_nodes(&g, &[7, 7, 7, 7], 1);
        let out = run_network(&g, nodes, &mut NoFault, 4);
        assert_eq!(out.verdict, NetVerdict::Consensus(7));
    }

    #[test]
    fn undecided_when_budget_too_small() {
        let g = generators::path(3);
        let nodes = bcast_nodes(&g, &[1, 2, 3], 10);
        let out = run_network(&g, nodes, &mut NoFault, 2);
        assert!(matches!(out.verdict, NetVerdict::Undecided { undecided: 3 }));
    }

    #[test]
    fn scripted_adversary_blocks_information() {
        // Path 0-1-2: cut the 0→1 message every round; node 2 never learns
        // node 0's larger value within the deadline → disagreement.
        let g = generators::path(3);
        let nodes = bcast_nodes(&g, &[9, 0, 0], 3);
        let cut = DirectedEdge::new(0, 1);
        let mut adv = ScriptedAdversary::repeating(vec![vec![cut]]);
        let out = run_network(&g, nodes, &mut adv, 6);
        match out.verdict {
            NetVerdict::Disagreement { .. } => {}
            other => panic!("expected disagreement, got {other:?}"),
        }
    }

    #[test]
    fn stats_count_messages() {
        let g = generators::complete(3);
        let nodes = bcast_nodes(&g, &[1, 2, 3], 2);
        let out = run_network(&g, nodes, &mut NoFault, 5);
        // 3 nodes × 2 neighbors × 2 rounds.
        assert_eq!(out.stats.messages_sent, 12);
        assert_eq!(out.stats.messages_delivered, 12);
        assert_eq!(out.stats.messages_dropped, 0);
    }

    #[test]
    fn misaddressed_messages_are_counted_not_delivered() {
        #[derive(Debug)]
        struct Chatty;
        impl NodeProtocol for Chatty {
            type Msg = ();
            fn input(&self) -> u64 {
                0
            }
            fn send(&self, _r: usize) -> Vec<(usize, ())> {
                vec![(2, ())] // not a neighbor on a path 0-1, and self for 2
            }
            fn advance(&mut self, _r: usize, _m: Vec<(usize, ())>) {}
            fn decision(&self) -> Option<u64> {
                None
            }
        }
        let g = generators::path(3); // edges 0-1, 1-2
        let out = run_network(&g, vec![Chatty, Chatty, Chatty], &mut NoFault, 1);
        // Node 0 → 2 misaddressed; node 1 → 2 fine; node 2 → 2 self-loop
        // (has_edge rejects self), misaddressed.
        assert_eq!(out.stats.misaddressed, 2);
        assert_eq!(out.stats.messages_sent, 1);
    }

    #[test]
    fn max_drops_counts_only_in_flight_edges() {
        // The adversary names three edges, but only 1→0 is ever in flight
        // (node 0 halts immediately, so 0→1 is pending in round 0 only if
        // node 0 is live — here all are live, so 0→1 and 1→0 fly; 2→0 is
        // not an edge of the path at all and never flies).
        let g = generators::path(3); // edges 0-1, 1-2
        let nodes = bcast_nodes(&g, &[1, 2, 3], 2);
        let mut adv = ScriptedAdversary::repeating(vec![vec![
            DirectedEdge::new(1, 0),
            DirectedEdge::new(2, 0), // not an edge: never pending
            DirectedEdge::new(0, 2), // not an edge: never pending
        ]]);
        let out = run_network(&g, nodes, &mut adv, 4);
        // Only 1→0 is ever both named and in flight.
        assert_eq!(out.stats.max_drops_per_round, 1);
        assert_eq!(
            out.stats.messages_dropped,
            out.stats.rounds,
            "one effective drop per round"
        );
    }

    #[test]
    fn audit_catches_disagreement_and_validity() {
        assert!(matches!(
            audit_network(&[0, 1], &[Some(0), Some(1)]),
            NetVerdict::Disagreement { .. }
        ));
        assert!(matches!(
            audit_network(&[5, 5], &[Some(4), Some(4)]),
            NetVerdict::ValidityViolation {
                proposed: 5,
                decided: 4
            }
        ));
        assert_eq!(
            audit_network(&[2, 3], &[Some(2), Some(2)]),
            NetVerdict::Consensus(2)
        );
    }

    #[test]
    #[should_panic(expected = "one protocol instance per vertex")]
    fn node_count_mismatch_rejected() {
        let g = generators::cycle(3);
        let _ = SyncNetwork::new(&g, bcast_nodes(&generators::cycle(4), &[0, 0, 0, 0], 1));
    }
}
