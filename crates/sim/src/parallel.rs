//! A data-parallel variant of the network engine.
//!
//! The synchronous round structure is embarrassingly parallel within a
//! round: every node's `send` depends only on its own state, and every
//! node's `advance` consumes a disjoint inbox. This engine fans both
//! phases out over `crossbeam` scoped threads working on disjoint node
//! chunks — no locks on the hot path; each worker accumulates a private
//! `WorkerShard` that the coordinator merges at the round barrier.
//!
//! The results are **bit-identical** to [`crate::network::SyncNetwork`]:
//! pending messages are ordered by (sender, receiver) before the adversary
//! sees them, so adversaries observe the same view in both engines
//! (asserted by the equivalence tests, and benchmarked as the
//! engine ablation in `minobs-bench`). Trace events are emitted from the
//! sequential phase only, so recorded streams canonicalise to the same
//! stream the serial engine produces.
//!
//! ## Panic isolation
//!
//! A panicking worker no longer aborts the run. Phase 1 (`send`, reads
//! node state) is wrapped in `catch_unwind` per worker: on a panic the
//! coordinator re-executes the whole shard serially — `send` is `&self`,
//! so the retry is exact — and records an `engine_degraded` trace event.
//! Phase 3 (`advance`, mutates node state) catches per node: a panicking
//! node is retried once on the coordinator thread with an **empty** inbox
//! (its messages were consumed by the failed call; in the omission model
//! an emptied inbox reads as extra message losses, which is the graceful
//! form of degradation). Either way the run completes with the same
//! `RunStats` the serial engine would produce.

use crate::adversary::Adversary;
use crate::network::{audit_network, NetOutcome, NodeProtocol};
use crate::trace::RunStats;
use minobs_graphs::{DirectedEdge, Graph};
use minobs_obs::{MessageStatus, NullRecorder, Recorder, RoundCounts, RoundTimer, SpanGuard, SpanIds};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-worker metric shard: counts (and, when observing, buffered
/// misaddressed sends) accumulated lock-free during phase 1 and merged by
/// the coordinator at the round barrier.
#[derive(Debug, Default)]
struct WorkerShard {
    sent: usize,
    misaddressed: usize,
    /// `(from, to)` of misaddressed sends, buffered for the recorder.
    /// Only populated when a recorder is observing.
    misaddressed_sends: Vec<(usize, usize)>,
}

/// Phase-1 send collection for one shard of nodes — shared between the
/// parallel workers and the coordinator's serial re-execution on panic.
fn collect_sends<P: NodeProtocol>(
    graph: &Graph,
    chunk_nodes: &[P],
    base: usize,
    round: usize,
    observing: bool,
) -> (Vec<(DirectedEdge, P::Msg)>, WorkerShard) {
    let mut out: Vec<(DirectedEdge, P::Msg)> = Vec::new();
    let mut shard = WorkerShard::default();
    for (off, node) in chunk_nodes.iter().enumerate() {
        if node.halted() {
            continue;
        }
        let id = base + off;
        for (to, msg) in node.send(round) {
            if graph.has_edge(id, to) {
                out.push((DirectedEdge::new(id, to), msg));
                shard.sent += 1;
            } else {
                shard.misaddressed += 1;
                if observing {
                    shard.misaddressed_sends.push((id, to));
                }
            }
        }
    }
    (out, shard)
}

/// Runs the network with node phases parallelized over `threads` workers.
///
/// Requires `P: Send + Sync` and `P::Msg: Send` — phase 1 reads node
/// state from several workers, phase 3 hands each worker exclusive access
/// to a disjoint chunk.
///
/// # Panics
/// Panics when `threads == 0` or the node count mismatches the graph.
pub fn run_network_parallel<P>(
    graph: &Graph,
    nodes: Vec<P>,
    adversary: &mut dyn Adversary,
    max_rounds: usize,
    threads: usize,
) -> NetOutcome
where
    P: NodeProtocol + Send + Sync,
    P::Msg: Send,
{
    run_network_parallel_with_recorder(graph, nodes, adversary, max_rounds, threads, &mut NullRecorder)
}

/// [`run_network_parallel`] with structured observations delivered to
/// `recorder`. All events are emitted from the coordinator between the
/// parallel phases — workers never touch the recorder.
pub fn run_network_parallel_with_recorder<P, R>(
    graph: &Graph,
    mut nodes: Vec<P>,
    adversary: &mut dyn Adversary,
    max_rounds: usize,
    threads: usize,
    recorder: &mut R,
) -> NetOutcome
where
    P: NodeProtocol + Send + Sync,
    P::Msg: Send,
    R: Recorder + ?Sized,
{
    assert!(threads > 0, "need at least one worker");
    assert_eq!(
        nodes.len(),
        graph.vertex_count(),
        "one protocol instance per vertex"
    );
    let n = nodes.len();
    let chunk = n.div_ceil(threads);
    let mut stats = RunStats::default();
    let mut round = 0usize;
    let run_timer = RoundTimer::start_if(recorder.enabled());
    // Coordinator-owned: span events (like all events) are emitted only
    // between the parallel phases, and the id sequence matches the serial
    // engine's so canonical streams stay identical.
    let mut span_ids = SpanIds::new();
    recorder.on_run_start("network_parallel", n, threads);

    while round < max_rounds && !nodes.iter().all(|p| p.halted()) {
        let observing = recorder.enabled();
        let timer = RoundTimer::start_if(observing);
        let decided_before: Vec<bool> = if observing {
            nodes.iter().map(|p| p.decision().is_some()).collect()
        } else {
            Vec::new()
        };
        let mut counts = RoundCounts::default();

        // ---- Phase 1 (parallel): collect sends per chunk, lock-free.
        // Each worker runs inside catch_unwind; a panicking shard is
        // re-executed serially by the coordinator (send is `&self`, so
        // the retry observes identical state).
        type SendResult<M> = Result<(Vec<(DirectedEdge, M)>, WorkerShard), ()>;
        let send_span = SpanGuard::begin(recorder, &mut span_ids, round, None, "net_send");
        let mut per_chunk: Vec<SendResult<P::Msg>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (ci, chunk_nodes) in nodes.chunks(chunk).enumerate() {
                handles.push(scope.spawn(move |_| {
                    catch_unwind(AssertUnwindSafe(|| {
                        collect_sends(graph, chunk_nodes, ci * chunk, round, observing)
                    }))
                    .map_err(|_| ())
                }));
            }
            per_chunk = handles.into_iter().map(|h| h.join().unwrap()).collect();
        })
        .expect("scope cannot fail: workers catch their own panics");

        // ---- Round barrier: merge the worker shards, recovering any
        // panicked shard serially. ----
        let mut pending: Vec<(DirectedEdge, P::Msg)> = Vec::new();
        for (ci, result) in per_chunk.into_iter().enumerate() {
            let (out, shard) = match result {
                Ok(pair) => pair,
                Err(()) => {
                    recorder.on_engine_degraded(round, "send", ci);
                    let chunk_nodes = &nodes[ci * chunk..((ci + 1) * chunk).min(n)];
                    collect_sends(graph, chunk_nodes, ci * chunk, round, observing)
                }
            };
            counts.sent += shard.sent;
            counts.misaddressed += shard.misaddressed;
            if observing {
                for (from, to) in shard.misaddressed_sends {
                    recorder.on_message(round, from, to, MessageStatus::Misaddressed);
                }
            }
            pending.extend(out);
        }
        // Deterministic adversary view, identical to the sequential engine
        // (which collects in node order).
        pending.sort_by_key(|(e, _)| (e.from, e.to));
        if let Some(span) = send_span {
            span.end(recorder);
        }

        // ---- Phase 2 (sequential): adversary + routing. ----
        let pending_edges: Vec<DirectedEdge> = pending.iter().map(|(e, _)| *e).collect();
        let drops: BTreeSet<DirectedEdge> = adversary
            .select_drops(round, &pending_edges)
            .into_iter()
            .collect();
        let mut inboxes: Vec<Vec<(usize, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        // Like the serial engine, stats count only effective omissions
        // (drops ∩ pending) so the `O_f` budget accounting is not inflated
        // by named-but-unsent edges.
        let mut effective_drops: BTreeSet<DirectedEdge> = BTreeSet::new();
        for (edge, msg) in pending {
            let status = if drops.contains(&edge) {
                counts.dropped += 1;
                effective_drops.insert(edge);
                MessageStatus::Dropped
            } else {
                inboxes[edge.to].push((edge.from, msg));
                counts.delivered += 1;
                MessageStatus::Delivered
            };
            if observing {
                recorder.on_message(round, edge.from, edge.to, status);
            }
        }
        stats.max_drops_per_round = stats.max_drops_per_round.max(effective_drops.len());
        // Message conservation, mirroring the serial engine's per-round
        // check: valid sends split exactly into delivered + dropped.
        debug_assert_eq!(
            counts.sent,
            counts.delivered + counts.dropped,
            "round {round}: sent messages must split into delivered + dropped"
        );
        stats.messages_sent += counts.sent;
        stats.messages_delivered += counts.delivered;
        stats.messages_dropped += counts.dropped;
        stats.misaddressed += counts.misaddressed;

        // ---- Phase 3 (parallel): advance per chunk over disjoint slices.
        // Panics are caught per node: the worker records which nodes
        // failed and carries on; the coordinator retries each failed node
        // once with an empty inbox (the original messages were consumed
        // by the failed call — in the omission model the loss reads as
        // extra drops, the graceful form of degradation).
        let advance_span = SpanGuard::begin(recorder, &mut span_ids, round, None, "net_advance");
        let mut failed_by_shard: Vec<Vec<usize>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut inbox_chunks = inboxes.chunks_mut(chunk);
            for (ci, node_chunk) in nodes.chunks_mut(chunk).enumerate() {
                let inbox_chunk = inbox_chunks.next().expect("chunk counts align");
                handles.push(scope.spawn(move |_| {
                    let base = ci * chunk;
                    let mut failed: Vec<usize> = Vec::new();
                    for (off, (node, inbox)) in
                        node_chunk.iter_mut().zip(inbox_chunk).enumerate()
                    {
                        if node.halted() {
                            continue;
                        }
                        let inbox = std::mem::take(inbox);
                        if catch_unwind(AssertUnwindSafe(|| node.advance(round, inbox)))
                            .is_err()
                        {
                            failed.push(base + off);
                        }
                    }
                    failed
                }));
            }
            failed_by_shard = handles.into_iter().map(|h| h.join().unwrap()).collect();
        })
        .expect("scope cannot fail: workers catch their own panics");
        for (ci, failed) in failed_by_shard.into_iter().enumerate() {
            if failed.is_empty() {
                continue;
            }
            recorder.on_engine_degraded(round, "advance", ci);
            for id in failed {
                // Best-effort retry on the coordinator thread; a second
                // panic leaves the node in whatever state the protocol
                // reached, and the run still completes.
                let node = &mut nodes[id];
                let _ = catch_unwind(AssertUnwindSafe(|| node.advance(round, Vec::new())));
            }
        }
        if let Some(span) = advance_span {
            span.end(recorder);
        }

        if observing {
            for (id, node) in nodes.iter().enumerate() {
                if !decided_before[id] {
                    if let Some(value) = node.decision() {
                        recorder.on_decision(round, id, value);
                    }
                }
            }
        }
        recorder.on_round_end(round, counts, timer.elapsed_nanos());
        round += 1;
    }

    stats.rounds = round;
    let inputs: Vec<u64> = nodes.iter().map(|p| p.input()).collect();
    let decisions: Vec<Option<u64>> = nodes.iter().map(|p| p.decision()).collect();
    let verdict = audit_network(&inputs, &decisions);
    recorder.on_run_end(
        stats.rounds,
        RoundCounts {
            sent: stats.messages_sent,
            delivered: stats.messages_delivered,
            dropped: stats.messages_dropped,
            misaddressed: stats.misaddressed,
        },
        run_timer.elapsed_nanos(),
    );
    NetOutcome {
        decisions,
        verdict,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoFault, RandomOmissions, ScriptedAdversary};
    use crate::network::run_network;
    use minobs_graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deterministic flooding protocol for equivalence checks.
    #[derive(Debug, Clone)]
    struct Flood {
        input: u64,
        best: u64,
        neighbors: Vec<usize>,
        deadline: usize,
        decision: Option<u64>,
    }

    impl NodeProtocol for Flood {
        type Msg = u64;
        fn input(&self) -> u64 {
            self.input
        }
        fn send(&self, _r: usize) -> Vec<(usize, u64)> {
            self.neighbors.iter().map(|&n| (n, self.best)).collect()
        }
        fn advance(&mut self, round: usize, received: Vec<(usize, u64)>) {
            for (_, v) in received {
                self.best = self.best.max(v);
            }
            if round + 1 >= self.deadline {
                self.decision = Some(self.best);
            }
        }
        fn decision(&self) -> Option<u64> {
            self.decision
        }
    }

    fn fleet(g: &Graph, deadline: usize) -> Vec<Flood> {
        (0..g.vertex_count())
            .map(|id| Flood {
                input: (id as u64 * 7) % 23,
                best: (id as u64 * 7) % 23,
                neighbors: g.neighbors(id).to_vec(),
                deadline,
                decision: None,
            })
            .collect()
    }

    #[test]
    fn matches_sequential_engine_no_fault() {
        for g in [generators::cycle(17), generators::complete(9), generators::grid(4, 5)] {
            let n = g.vertex_count();
            let seq = run_network(&g, fleet(&g, n - 1), &mut NoFault, 2 * n);
            for threads in [1, 2, 4, 7] {
                let par =
                    run_network_parallel(&g, fleet(&g, n - 1), &mut NoFault, 2 * n, threads);
                assert_eq!(par.decisions, seq.decisions, "{g} threads={threads}");
                assert_eq!(par.verdict, seq.verdict);
                assert_eq!(par.stats, seq.stats);
            }
        }
    }

    #[test]
    fn matches_sequential_engine_under_scripted_adversary() {
        let g = generators::torus(3, 4);
        let n = g.vertex_count();
        let script: Vec<Vec<DirectedEdge>> = vec![
            vec![DirectedEdge::new(0, 1), DirectedEdge::new(4, 5)],
            vec![DirectedEdge::new(1, 0)],
            vec![],
        ];
        let seq = run_network(
            &g,
            fleet(&g, n - 1),
            &mut ScriptedAdversary::repeating(script.clone()),
            2 * n,
        );
        let par = run_network_parallel(
            &g,
            fleet(&g, n - 1),
            &mut ScriptedAdversary::repeating(script),
            2 * n,
            3,
        );
        assert_eq!(par.decisions, seq.decisions);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn matches_sequential_engine_under_seeded_random_adversary() {
        // The adversary sees identically-ordered pending lists, so a seeded
        // RNG produces the same drops in both engines.
        let g = generators::hypercube(4);
        let n = g.vertex_count();
        let seq = run_network(
            &g,
            fleet(&g, n - 1),
            &mut RandomOmissions::new(3, StdRng::seed_from_u64(11)),
            2 * n,
        );
        let par = run_network_parallel(
            &g,
            fleet(&g, n - 1),
            &mut RandomOmissions::new(3, StdRng::seed_from_u64(11)),
            2 * n,
            4,
        );
        assert_eq!(par.decisions, seq.decisions);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn more_threads_than_nodes_is_fine() {
        let g = generators::cycle(3);
        let out = run_network_parallel(&g, fleet(&g, 2), &mut NoFault, 8, 16);
        assert!(out.verdict.is_consensus());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let g = generators::cycle(3);
        let _ = run_network_parallel(&g, fleet(&g, 2), &mut NoFault, 8, 0);
    }

    /// Flood that panics in `send` whenever it runs on an unnamed thread.
    /// Cargo's test harness names its threads after the test, while the
    /// engine's workers are unnamed — so the serial run (on the test
    /// thread) is clean and every parallel worker blows up, exercising
    /// the exact-recovery path on all shards.
    #[derive(Debug, Clone)]
    struct SendBomb(Flood);

    impl NodeProtocol for SendBomb {
        type Msg = u64;
        fn input(&self) -> u64 {
            self.0.input()
        }
        fn send(&self, r: usize) -> Vec<(usize, u64)> {
            if std::thread::current().name().is_none() {
                panic!("worker-only send failure");
            }
            self.0.send(r)
        }
        fn advance(&mut self, round: usize, received: Vec<(usize, u64)>) {
            self.0.advance(round, received);
        }
        fn decision(&self) -> Option<u64> {
            self.0.decision()
        }
    }

    #[test]
    fn panicking_send_worker_degrades_and_matches_sequential() {
        use minobs_obs::{MemoryRecorder, TraceEvent};
        let g = generators::grid(4, 5);
        let n = g.vertex_count();
        let seq = run_network(
            &g,
            fleet(&g, n - 1).into_iter().map(SendBomb).collect(),
            &mut NoFault,
            2 * n,
        );
        let mut rec = MemoryRecorder::new();
        let par = run_network_parallel_with_recorder(
            &g,
            fleet(&g, n - 1).into_iter().map(SendBomb).collect(),
            &mut NoFault,
            2 * n,
            4,
            &mut rec,
        );
        // Exact degradation: the coordinator re-executes every panicked
        // shard serially, so the run is bit-identical to the serial one.
        assert_eq!(par.decisions, seq.decisions);
        assert_eq!(par.verdict, seq.verdict);
        assert_eq!(par.stats, seq.stats);
        let degraded: Vec<_> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::EngineDegraded { phase, shard, .. } => Some((*phase, *shard)),
                _ => None,
            })
            .collect();
        assert!(!degraded.is_empty(), "expected EngineDegraded events");
        assert!(degraded.iter().all(|&(phase, _)| phase == "send"));
    }

    /// Flood that panics in `advance` at one round on unnamed threads.
    #[derive(Debug, Clone)]
    struct AdvanceBomb {
        inner: Flood,
        bomb_round: usize,
    }

    impl NodeProtocol for AdvanceBomb {
        type Msg = u64;
        fn input(&self) -> u64 {
            self.inner.input()
        }
        fn send(&self, r: usize) -> Vec<(usize, u64)> {
            self.inner.send(r)
        }
        fn advance(&mut self, round: usize, received: Vec<(usize, u64)>) {
            if round == self.bomb_round && std::thread::current().name().is_none() {
                panic!("worker-only advance failure");
            }
            self.inner.advance(round, received);
        }
        fn decision(&self) -> Option<u64> {
            self.inner.decision()
        }
    }

    #[test]
    fn panicking_advance_worker_completes_with_degraded_event() {
        use minobs_obs::{MemoryRecorder, TraceEvent};
        let g = generators::complete(9);
        let n = g.vertex_count();
        let bombed = |g: &Graph| -> Vec<AdvanceBomb> {
            fleet(g, n - 1)
                .into_iter()
                .map(|inner| AdvanceBomb { inner, bomb_round: 1 })
                .collect()
        };
        let seq = run_network(&g, bombed(&g), &mut NoFault, 2 * n);
        let mut rec = MemoryRecorder::new();
        let par =
            run_network_parallel_with_recorder(&g, bombed(&g), &mut NoFault, 2 * n, 3, &mut rec);
        // Advance-phase recovery is best-effort (the panicked inbox is
        // gone; the retry sees an empty one — an omission the fault model
        // already allows), so we assert completion and conservation, not
        // decision equality. Message accounting happens in the routing
        // phase and is untouched by the degradation.
        assert_eq!(par.stats, seq.stats);
        assert_eq!(par.decisions.len(), n);
        assert!(par.decisions.iter().all(Option::is_some));
        let degraded: Vec<_> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::EngineDegraded { round, phase, .. } => Some((*round, *phase)),
                _ => None,
            })
            .collect();
        assert!(!degraded.is_empty(), "expected EngineDegraded events");
        assert!(degraded.iter().all(|&(round, phase)| round == 1 && phase == "advance"));
    }
}
