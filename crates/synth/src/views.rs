//! Hash-consed full-information views.
//!
//! A view is what a process knows: its role and input at round 0, and for
//! every later round, the pair (its previous view, the peer view it
//! received — or `⊥`). Structurally equal views get the same [`ViewId`],
//! so "the process cannot distinguish two executions" becomes id equality.

use minobs_core::letter::Role;
use std::collections::HashMap;

/// An interned view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(pub u32);

/// The defining structure of a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewKey {
    /// Round-0 view: who I am and what I propose.
    Base {
        /// The process.
        role: Role,
        /// Its input bit.
        input: bool,
    },
    /// Later view: my previous view plus what I received (`None` = null).
    Extend {
        /// My view one round earlier.
        prev: ViewId,
        /// The peer's view I received this round, if delivered.
        received: Option<ViewId>,
    },
}

/// The intern table.
#[derive(Debug, Default)]
pub struct ViewArena {
    ids: HashMap<ViewKey, ViewId>,
    keys: Vec<ViewKey>,
}

impl ViewArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a key.
    pub fn intern(&mut self, key: ViewKey) -> ViewId {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = ViewId(self.keys.len() as u32);
        self.keys.push(key);
        self.ids.insert(key, id);
        id
    }

    /// The base view of `(role, input)`.
    pub fn base(&mut self, role: Role, input: bool) -> ViewId {
        self.intern(ViewKey::Base { role, input })
    }

    /// Extends `prev` by a received peer view (or `None`).
    pub fn extend(&mut self, prev: ViewId, received: Option<ViewId>) -> ViewId {
        self.intern(ViewKey::Extend { prev, received })
    }

    /// The key of an id.
    pub fn key(&self, id: ViewId) -> ViewKey {
        self.keys[id.0 as usize]
    }

    /// Number of distinct views interned.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Walks back to the base of a view: `(role, input)`.
    pub fn origin(&self, id: ViewId) -> (Role, bool) {
        let mut cur = id;
        loop {
            match self.key(cur) {
                ViewKey::Base { role, input } => return (role, input),
                ViewKey::Extend { prev, .. } => cur = prev,
            }
        }
    }

    /// The round of a view (number of `Extend` layers).
    pub fn round(&self, id: ViewId) -> usize {
        let mut cur = id;
        let mut depth = 0;
        loop {
            match self.key(cur) {
                ViewKey::Base { .. } => return depth,
                ViewKey::Extend { prev, .. } => {
                    cur = prev;
                    depth += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let mut arena = ViewArena::new();
        let a = arena.base(Role::White, true);
        let b = arena.base(Role::White, true);
        let c = arena.base(Role::White, false);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn extension_structure_matters() {
        let mut arena = ViewArena::new();
        let w = arena.base(Role::White, true);
        let b = arena.base(Role::Black, false);
        let got = arena.extend(w, Some(b));
        let null = arena.extend(w, None);
        assert_ne!(got, null);
        assert_eq!(arena.extend(w, Some(b)), got);
    }

    #[test]
    fn origin_and_round_walk_back() {
        let mut arena = ViewArena::new();
        let w = arena.base(Role::White, true);
        let b = arena.base(Role::Black, false);
        let v1 = arena.extend(w, Some(b));
        let v2 = arena.extend(v1, None);
        assert_eq!(arena.origin(v2), (Role::White, true));
        assert_eq!(arena.round(v2), 2);
        assert_eq!(arena.round(w), 0);
    }

    #[test]
    fn identical_histories_converge_across_inputs() {
        // Black never hears White: Black's view is independent of White's
        // input — the core of every indistinguishability argument.
        let mut arena = ViewArena::new();
        let b = arena.base(Role::Black, true);
        let b_after_silence_1 = arena.extend(b, None);
        let b_after_silence_2 = arena.extend(b, None);
        assert_eq!(b_after_silence_1, b_after_silence_2);
    }
}
