//! The bounded solvability model checker.
//!
//! `solvable_by(scheme, k, alphabet)` answers: *does any algorithm exist
//! in which both processes decide at round `k`, correctly, for every
//! scenario of the scheme?* — by the full-information reduction (see the
//! crate docs) this is a finite union-find computation over views.
//!
//! The enumeration is level-synchronous over `Pref_k(L)`: the frontier
//! holds one entry per (allowed prefix × input pair) carrying the two
//! current view ids; each round extends prefixes by every allowed letter.
//! Prefix pruning uses [`OmissionScheme::allows_prefix`], so the checker
//! works for any scheme — classic, ω-regular, or hand-rolled.

use crate::views::{ViewArena, ViewId};
use minobs_core::letter::{Letter, Role};
use minobs_core::scheme::OmissionScheme;
use minobs_core::word::Word;
use minobs_obs::{NullRecorder, Recorder, RoundTimer, SpanGuard, SpanIds};

/// The `checker_progress` heartbeat fires each time the cumulative
/// explored-state count crosses another multiple of this stride. Small
/// enough that realistic sweeps emit progress every few rounds, large
/// enough that tiny checks stay silent.
const CHECKER_PROGRESS_STRIDE: usize = 4_096;

/// One execution in a bivalency chain: the scenario prefix and the inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStep {
    /// The `k`-round scenario prefix.
    pub prefix: Word,
    /// White's input.
    pub white_input: bool,
    /// Black's input.
    pub black_input: bool,
}

/// The checker's verdict at horizon `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// A decision map exists: some algorithm decides at round `k` on all
    /// of `Pref_k(L)`.
    Solvable {
        /// Number of distinct final views.
        views: usize,
        /// Number of execution-connected components.
        components: usize,
    },
    /// No such algorithm: the all-0 and all-1 executions are connected.
    Unsolvable {
        /// A chain of executions linking a 0-pinned view to a 1-pinned
        /// view; consecutive steps share a process view (the bivalency
        /// chain).
        chain: Vec<ChainStep>,
    },
    /// The scheme allows no prefix of length `k` at all (empty scheme).
    Empty,
    /// The check ran out of [`Budget`] before reaching horizon `k`. The
    /// partial answer is honest: every horizon up to `horizon_reached`
    /// was fully explored without finding a verdict for `k`.
    BudgetExhausted {
        /// The deepest round whose frontier was fully computed.
        horizon_reached: usize,
        /// Size of the frontier at the stop point.
        frontier_size: usize,
    },
}

impl CheckResult {
    /// `true` for [`CheckResult::Solvable`] (and for the vacuous
    /// [`CheckResult::Empty`]). A [`CheckResult::BudgetExhausted`] is
    /// *not* solvable — it is no verdict at all.
    pub fn is_solvable(&self) -> bool {
        matches!(self, CheckResult::Solvable { .. } | CheckResult::Empty)
    }
}

/// A resource cap for a bounded check: graceful degradation instead of an
/// unbounded frontier explosion. Exceeding either limit stops the check
/// at the next round boundary with [`CheckResult::BudgetExhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Cap on cumulative frontier entries explored (sum over rounds).
    pub max_states: usize,
    /// Wall-clock cap in milliseconds. `u64::MAX` disables the clock,
    /// keeping the check fully deterministic.
    pub max_millis: u64,
}

impl Budget {
    /// No limits — behaves exactly like the unbudgeted entry points.
    pub const UNLIMITED: Budget = Budget {
        max_states: usize::MAX,
        max_millis: u64::MAX,
    };

    /// A deterministic, states-only budget (the clock is disabled).
    pub fn states(max_states: usize) -> Self {
        Budget {
            max_states,
            max_millis: u64::MAX,
        }
    }
}

/// Mutable budget accounting, shared across rounds — and across horizons
/// in [`first_solvable_horizon_budgeted`], so the cap is cumulative for
/// the whole sweep rather than per inner check.
struct BudgetTracker {
    budget: Budget,
    states_spent: usize,
    deadline: Option<std::time::Instant>,
}

impl BudgetTracker {
    fn new(budget: Budget) -> Self {
        BudgetTracker {
            budget,
            states_spent: 0,
            deadline: (budget.max_millis != u64::MAX).then(|| {
                std::time::Instant::now() + std::time::Duration::from_millis(budget.max_millis)
            }),
        }
    }

    /// Charges one round's frontier; `true` when the budget still holds.
    fn charge(&mut self, frontier: usize) -> bool {
        self.states_spent = self.states_spent.saturating_add(frontier);
        self.states_spent <= self.budget.max_states
            && self.deadline.is_none_or(|d| std::time::Instant::now() < d)
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Tree-encoded prefix store: `prefixes[i] = (parent index, letter)`.
type PrefixStore = Vec<(u32, Option<Letter>)>;

/// One frontier entry: an allowed prefix (index into `prefixes`) with an
/// input pair and the two current views.
#[derive(Debug, Clone, Copy)]
struct ExecState {
    prefix_idx: u32,
    white_input: bool,
    black_input: bool,
    view_w: ViewId,
    view_b: ViewId,
}

/// Decides `k`-round solvability of `scheme` over the given per-round
/// alphabet (use `GammaLetter`-only letters for `L ⊆ Γ^ω`, all of `Σ` for
/// schemes with double omission).
pub fn solvable_by(scheme: &dyn OmissionScheme, k: usize, alphabet: &[Letter]) -> CheckResult {
    solvable_by_impl(
        &|u| scheme.allows_prefix(u),
        None,
        k,
        alphabet,
        &mut NullRecorder,
        None,
    )
}

/// [`solvable_by`] under a [`Budget`]: stops at the next round boundary
/// once the budget runs out, returning the honest partial verdict
/// [`CheckResult::BudgetExhausted`] instead of churning forever.
pub fn solvable_by_budgeted(
    scheme: &dyn OmissionScheme,
    k: usize,
    alphabet: &[Letter],
    budget: Budget,
) -> CheckResult {
    solvable_by_budgeted_with_recorder(scheme, k, alphabet, budget, &mut NullRecorder)
}

/// [`solvable_by_budgeted`] with structured observations: exhaustion
/// additionally emits a `budget_exhausted` trace event.
pub fn solvable_by_budgeted_with_recorder<R: Recorder + ?Sized>(
    scheme: &dyn OmissionScheme,
    k: usize,
    alphabet: &[Letter],
    budget: Budget,
    recorder: &mut R,
) -> CheckResult {
    let mut tracker = BudgetTracker::new(budget);
    solvable_by_impl(
        &|u| scheme.allows_prefix(u),
        None,
        k,
        alphabet,
        recorder,
        Some(&mut tracker),
    )
}

/// [`solvable_by`] with structured observations delivered to `recorder`:
/// one `checker_round` event per frontier step, carrying the frontier size
/// and view-arena growth.
pub fn solvable_by_with_recorder<R: Recorder + ?Sized>(
    scheme: &dyn OmissionScheme,
    k: usize,
    alphabet: &[Letter],
    recorder: &mut R,
) -> CheckResult {
    solvable_by_impl(
        &|u| scheme.allows_prefix(u),
        None,
        k,
        alphabet,
        recorder,
        None,
    )
}

/// The rayon-parallel variant of [`solvable_by`]: prefix-viability tests —
/// the expensive part for automata-backed schemes, where each test is an
/// ω-automata emptiness query — are fanned out with `rayon`; view
/// interning and the union-find stay sequential. Results are identical to
/// the sequential checker (tested), letter for letter.
pub fn solvable_by_par<S>(scheme: &S, k: usize, alphabet: &[Letter]) -> CheckResult
where
    S: OmissionScheme + Sync + ?Sized,
{
    solvable_by_par_with_recorder(scheme, k, alphabet, &mut NullRecorder)
}

/// [`solvable_by_par`] under a [`Budget`]. Budget accounting lives in the
/// sequential coordinator, so a states-only budget degrades at exactly
/// the same round as the sequential [`solvable_by_budgeted`].
pub fn solvable_by_par_budgeted<S>(
    scheme: &S,
    k: usize,
    alphabet: &[Letter],
    budget: Budget,
) -> CheckResult
where
    S: OmissionScheme + Sync + ?Sized,
{
    let mut tracker = BudgetTracker::new(budget);
    solvable_by_impl(
        &|u| scheme.allows_prefix(u),
        Some(&|words: &[Word]| {
            use rayon::prelude::*;
            words.par_iter().map(|u| scheme.allows_prefix(u)).collect()
        }),
        k,
        alphabet,
        &mut NullRecorder,
        Some(&mut tracker),
    )
}

/// [`solvable_by_par`] with structured observations delivered to
/// `recorder`. Events come from the sequential coordinator, so traces are
/// identical to [`solvable_by_with_recorder`]'s modulo timing.
pub fn solvable_by_par_with_recorder<S, R>(
    scheme: &S,
    k: usize,
    alphabet: &[Letter],
    recorder: &mut R,
) -> CheckResult
where
    S: OmissionScheme + Sync + ?Sized,
    R: Recorder + ?Sized,
{
    solvable_by_impl(
        &|u| scheme.allows_prefix(u),
        Some(&|words: &[Word]| {
            use rayon::prelude::*;
            words.par_iter().map(|u| scheme.allows_prefix(u)).collect()
        }),
        k,
        alphabet,
        recorder,
        None,
    )
}

type BatchViability<'a> = &'a dyn Fn(&[Word]) -> Vec<bool>;

fn solvable_by_impl<R: Recorder + ?Sized>(
    allows: &dyn Fn(&Word) -> bool,
    batch: Option<BatchViability<'_>>,
    k: usize,
    alphabet: &[Letter],
    recorder: &mut R,
    mut tracker: Option<&mut BudgetTracker>,
) -> CheckResult {
    let mut arena = ViewArena::new();
    // Prefix store: tree-encoded, prefixes[i] = (parent index, letter).
    let mut prefixes: PrefixStore = vec![(0, None)];
    if !allows(&Word::empty()) {
        return CheckResult::Empty;
    }

    // Round 0 frontier: the empty prefix with all four input pairs.
    let mut frontier: Vec<ExecState> = Vec::new();
    for wi in [false, true] {
        for bi in [false, true] {
            frontier.push(ExecState {
                prefix_idx: 0,
                white_input: wi,
                black_input: bi,
                view_w: arena.base(Role::White, wi),
                view_b: arena.base(Role::Black, bi),
            });
        }
    }

    if let Some(t) = tracker.as_deref_mut() {
        if !t.charge(frontier.len()) {
            recorder.on_budget_exhausted(0, frontier.len(), t.states_spent);
            return CheckResult::BudgetExhausted {
                horizon_reached: 0,
                frontier_size: frontier.len(),
            };
        }
    }

    let reconstruct = |prefixes: &PrefixStore, mut idx: u32| -> Word {
        let mut letters = Vec::new();
        while let (parent, Some(letter)) = prefixes[idx as usize] {
            letters.push(letter);
            idx = parent;
        }
        letters.reverse();
        Word(letters)
    };

    let mut span_ids = SpanIds::new();
    let mut states_total = frontier.len();
    let mut progress_mark = states_total / CHECKER_PROGRESS_STRIDE;

    for round in 0..k {
        let step_timer = RoundTimer::start_if(recorder.enabled());
        let expand_span = SpanGuard::begin(recorder, &mut span_ids, round + 1, None, "checker_expand");
        let mut next: Vec<ExecState> = Vec::with_capacity(frontier.len() * alphabet.len());
        // Group by prefix: all four input pairs extend the same way, so
        // test allows_prefix once per (prefix, letter). Entries with the
        // same prefix are contiguous by construction.
        let mut groups: Vec<(usize, usize, u32)> = Vec::new();
        let mut i = 0usize;
        while i < frontier.len() {
            let prefix_idx = frontier[i].prefix_idx;
            let mut j = i;
            while j < frontier.len() && frontier[j].prefix_idx == prefix_idx {
                j += 1;
            }
            groups.push((i, j, prefix_idx));
            i = j;
        }

        // Viability of every (group, letter) extension — the expensive
        // queries, batched so the parallel variant can fan them out.
        let candidate_words: Vec<Word> = groups
            .iter()
            .flat_map(|&(_, _, pidx)| {
                let word = reconstruct(&prefixes, pidx);
                alphabet.iter().map(move |&l| word.push(l))
            })
            .collect();
        let viable: Vec<bool> = match batch {
            Some(run_batch) => run_batch(&candidate_words),
            None => candidate_words.iter().map(allows).collect(),
        };

        for (g, &(i, j, prefix_idx)) in groups.iter().enumerate() {
            for (li, &letter) in alphabet.iter().enumerate() {
                if !viable[g * alphabet.len() + li] {
                    continue;
                }
                prefixes.push((prefix_idx, Some(letter)));
                let new_idx = (prefixes.len() - 1) as u32;
                for entry in &frontier[i..j] {
                    let to_white = letter
                        .delivers_from(Role::Black)
                        .then_some(entry.view_b);
                    let to_black = letter
                        .delivers_from(Role::White)
                        .then_some(entry.view_w);
                    next.push(ExecState {
                        prefix_idx: new_idx,
                        white_input: entry.white_input,
                        black_input: entry.black_input,
                        view_w: arena.extend(entry.view_w, to_white),
                        view_b: arena.extend(entry.view_b, to_black),
                    });
                }
            }
        }
        if let Some(span) = expand_span {
            span.end(recorder);
        }
        // Keep same-prefix entries contiguous: sort by prefix index.
        let dedup_span = SpanGuard::begin(recorder, &mut span_ids, round + 1, None, "checker_dedup");
        next.sort_by_key(|e| e.prefix_idx);
        if let Some(span) = dedup_span {
            span.end(recorder);
        }
        frontier = next;
        if recorder.enabled() {
            states_total += frontier.len();
            if states_total / CHECKER_PROGRESS_STRIDE > progress_mark {
                progress_mark = states_total / CHECKER_PROGRESS_STRIDE;
                recorder.on_checker_progress(round + 1, frontier.len(), states_total);
            }
        }
        recorder.on_checker_round(
            round + 1,
            frontier.len(),
            arena.len(),
            step_timer.elapsed_nanos(),
        );
        if frontier.is_empty() {
            return CheckResult::Empty;
        }
        // Budget is checked at round granularity: the round that tips
        // the scales still finishes, so `horizon_reached` is always a
        // fully-explored depth.
        if round + 1 < k {
            if let Some(t) = tracker.as_deref_mut() {
                if !t.charge(frontier.len()) {
                    recorder.on_budget_exhausted(round + 1, frontier.len(), t.states_spent);
                    return CheckResult::BudgetExhausted {
                        horizon_reached: round + 1,
                        frontier_size: frontier.len(),
                    };
                }
            }
        }
    }

    // Union final views per execution; pin uniform-input executions.
    let decide_span = SpanGuard::begin(recorder, &mut span_ids, k, None, "checker_decide");
    let n_views = arena.len();
    let mut uf = UnionFind::new(n_views);
    for e in &frontier {
        uf.union(e.view_w.0, e.view_b.0);
    }
    // Pins: root → required value (via a representative execution).
    let mut pin0: Vec<Option<usize>> = vec![None; n_views]; // exec index
    let mut pin1: Vec<Option<usize>> = vec![None; n_views];
    for (idx, e) in frontier.iter().enumerate() {
        if e.white_input == e.black_input {
            let root = uf.find(e.view_w.0) as usize;
            let slot = if e.white_input { &mut pin1 } else { &mut pin0 };
            if slot[root].is_none() {
                slot[root] = Some(idx);
            }
        }
    }
    let conflict_root = (0..n_views).find(|&r| {
        // Only roots carry pins.
        pin0[r].is_some() && pin1[r].is_some()
    });

    let result = match conflict_root {
        None => {
            // Count components among final views only.
            let mut roots: Vec<u32> = frontier
                .iter()
                .flat_map(|e| [e.view_w.0, e.view_b.0])
                .collect();
            for r in roots.iter_mut() {
                *r = uf.find(*r);
            }
            roots.sort_unstable();
            roots.dedup();
            let finals: std::collections::BTreeSet<u32> = frontier
                .iter()
                .flat_map(|e| [e.view_w.0, e.view_b.0])
                .collect();
            CheckResult::Solvable {
                views: finals.len(),
                components: roots.len(),
            }
        }
        Some(root) => {
            let chain = extract_chain(
                &frontier,
                &prefixes,
                pin0[root].unwrap(),
                pin1[root].unwrap(),
                &reconstruct,
            );
            CheckResult::Unsolvable { chain }
        }
    };
    if let Some(span) = decide_span {
        span.end(recorder);
    }
    result
}

/// BFS over executions: two executions are adjacent when they share a
/// final view (some process cannot distinguish them). Returns the chain
/// from the 0-pinned execution to the 1-pinned one.
fn extract_chain(
    frontier: &[ExecState],
    prefixes: &PrefixStore,
    start: usize,
    goal: usize,
    reconstruct: &dyn Fn(&PrefixStore, u32) -> Word,
) -> Vec<ChainStep> {
    use std::collections::{HashMap, VecDeque};
    // view id → executions carrying it.
    let mut by_view: HashMap<u32, Vec<usize>> = HashMap::new();
    for (idx, e) in frontier.iter().enumerate() {
        by_view.entry(e.view_w.0).or_default().push(idx);
        by_view.entry(e.view_b.0).or_default().push(idx);
    }
    let mut prev: HashMap<usize, usize> = HashMap::new();
    let mut seen = vec![false; frontier.len()];
    seen[start] = true;
    let mut queue = VecDeque::from([start]);
    'bfs: while let Some(cur) = queue.pop_front() {
        if cur == goal {
            break 'bfs;
        }
        let e = &frontier[cur];
        for v in [e.view_w.0, e.view_b.0] {
            for &other in by_view.get(&v).into_iter().flatten() {
                if !seen[other] {
                    seen[other] = true;
                    prev.insert(other, cur);
                    queue.push_back(other);
                }
            }
        }
    }
    // Rebuild path.
    let mut path = vec![goal];
    let mut cur = goal;
    while cur != start {
        cur = prev[&cur];
        path.push(cur);
    }
    path.reverse();
    path.into_iter()
        .map(|idx| {
            let e = &frontier[idx];
            ChainStep {
                prefix: reconstruct(prefixes, e.prefix_idx),
                white_input: e.white_input,
                black_input: e.black_input,
            }
        })
        .collect()
}

/// The `Γ` alphabet for the checker.
pub fn gamma_alphabet() -> Vec<Letter> {
    vec![Letter::Full, Letter::DropWhite, Letter::DropBlack]
}

/// The full `Σ` alphabet for the checker.
pub fn sigma_alphabet() -> Vec<Letter> {
    Letter::ALL.to_vec()
}

/// The smallest horizon `k ≤ max_k` at which the scheme is solvable, or
/// `None`. By Corollary III.14 / Proposition III.15 this equals the
/// paper's worst-case round complexity `p` whenever it exists.
pub fn first_solvable_horizon(
    scheme: &dyn OmissionScheme,
    max_k: usize,
    alphabet: &[Letter],
) -> Option<usize> {
    first_solvable_horizon_with_recorder(scheme, max_k, alphabet, &mut NullRecorder)
}

/// [`first_solvable_horizon`] with structured observations delivered to
/// `recorder`: every inner check streams its `checker_round` events, and
/// each horizon `k` closes with a `horizon` event carrying its verdict and
/// wall time.
pub fn first_solvable_horizon_with_recorder<R: Recorder + ?Sized>(
    scheme: &dyn OmissionScheme,
    max_k: usize,
    alphabet: &[Letter],
    recorder: &mut R,
) -> Option<usize> {
    for k in 0..=max_k {
        let timer = RoundTimer::start_if(recorder.enabled());
        let solvable = solvable_by_with_recorder(scheme, k, alphabet, recorder).is_solvable();
        recorder.on_horizon(k, solvable, timer.elapsed_nanos());
        if solvable {
            return Some(k);
        }
    }
    None
}

/// The outcome of a budgeted horizon sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizonOutcome {
    /// The smallest solvable horizon, as in [`first_solvable_horizon`].
    Solvable(usize),
    /// Every horizon `k ≤ max_k` was fully checked and none is solvable.
    UnsolvableWithin(usize),
    /// The budget ran out mid-sweep. All horizons `< at_horizon` were
    /// fully checked and unsolvable; the verdict for `at_horizon` and
    /// beyond is unknown.
    BudgetExhausted {
        /// The horizon whose check hit the cap.
        at_horizon: usize,
        /// Deepest fully-explored round inside that check.
        horizon_reached: usize,
        /// Frontier size at the stop point.
        frontier_size: usize,
    },
}

/// [`first_solvable_horizon`] under a [`Budget`] that is **cumulative
/// across the whole sweep**: the state/time caps are shared by every
/// inner check, so the sweep as a whole degrades gracefully instead of
/// paying the cap once per horizon.
pub fn first_solvable_horizon_budgeted(
    scheme: &dyn OmissionScheme,
    max_k: usize,
    alphabet: &[Letter],
    budget: Budget,
) -> HorizonOutcome {
    first_solvable_horizon_budgeted_with_recorder(scheme, max_k, alphabet, budget, &mut NullRecorder)
}

/// [`first_solvable_horizon_budgeted`] with structured observations.
pub fn first_solvable_horizon_budgeted_with_recorder<R: Recorder + ?Sized>(
    scheme: &dyn OmissionScheme,
    max_k: usize,
    alphabet: &[Letter],
    budget: Budget,
    recorder: &mut R,
) -> HorizonOutcome {
    let mut tracker = BudgetTracker::new(budget);
    for k in 0..=max_k {
        let timer = RoundTimer::start_if(recorder.enabled());
        let result = solvable_by_impl(
            &|u| scheme.allows_prefix(u),
            None,
            k,
            alphabet,
            recorder,
            Some(&mut tracker),
        );
        if let CheckResult::BudgetExhausted {
            horizon_reached,
            frontier_size,
        } = result
        {
            return HorizonOutcome::BudgetExhausted {
                at_horizon: k,
                horizon_reached,
                frontier_size,
            };
        }
        let solvable = result.is_solvable();
        recorder.on_horizon(k, solvable, timer.elapsed_nanos());
        if solvable {
            return HorizonOutcome::Solvable(k);
        }
    }
    HorizonOutcome::UnsolvableWithin(max_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_core::minimal::CanonicalMinimalObstruction;
    use minobs_core::scheme::{classic, ClassicScheme};
    use minobs_core::theorem::min_excluded_prefix;

    fn gamma() -> Vec<Letter> {
        gamma_alphabet()
    }

    #[test]
    fn nothing_is_solvable_at_horizon_zero() {
        // Without communication mixed inputs force a conflict.
        let r = solvable_by(&classic::s0(), 0, &gamma());
        assert!(!r.is_solvable());
    }

    #[test]
    fn s0_and_t_solvable_at_one_round() {
        for scheme in [classic::s0(), classic::t_white(), classic::t_black()] {
            assert!(
                solvable_by(&scheme, 1, &gamma()).is_solvable(),
                "{}",
                scheme.name()
            );
        }
    }

    #[test]
    fn c1_and_s1_need_exactly_two_rounds() {
        for scheme in [classic::c1(), classic::s1()] {
            assert!(!solvable_by(&scheme, 1, &gamma()).is_solvable(), "{}", scheme.name());
            assert!(solvable_by(&scheme, 2, &gamma()).is_solvable(), "{}", scheme.name());
            assert_eq!(
                first_solvable_horizon(&scheme, 4, &gamma()),
                Some(2),
                "{}",
                scheme.name()
            );
        }
    }

    #[test]
    fn r1_unsolvable_at_every_tested_horizon() {
        for k in 0..=6 {
            let r = solvable_by(&classic::r1(), k, &gamma());
            assert!(!r.is_solvable(), "k={k}");
        }
    }

    #[test]
    fn s2_unsolvable_with_sigma_alphabet() {
        for k in 0..=4 {
            let r = solvable_by(&classic::s2(), k, &sigma_alphabet());
            assert!(!r.is_solvable(), "k={k}");
        }
    }

    #[test]
    fn bivalency_chain_is_a_valid_certificate() {
        let CheckResult::Unsolvable { chain } = solvable_by(&classic::r1(), 3, &gamma()) else {
            panic!("R1 must be unsolvable");
        };
        assert!(chain.len() >= 2);
        // Endpoints are the uniform executions with opposite values.
        let first = chain.first().unwrap();
        let last = chain.last().unwrap();
        assert_eq!(first.white_input, first.black_input);
        assert_eq!(last.white_input, last.black_input);
        assert_ne!(first.white_input, last.white_input);
        // Every step's prefix is allowed by the scheme.
        for step in &chain {
            assert!(classic::r1().allows_prefix(&step.prefix), "{:?}", step);
            assert_eq!(step.prefix.len(), 3);
        }
    }

    #[test]
    fn horizon_matches_min_excluded_prefix_for_catalog() {
        // The structural identity: first_solvable_horizon = p
        // (Cor. III.14 / Prop. III.15), including the unbounded cases.
        let schemes = [
            classic::s0(),
            classic::t_white(),
            classic::t_black(),
            classic::c1(),
            classic::s1(),
            classic::r1(),
            classic::fair_gamma(),
            classic::almost_fair(),
        ];
        for scheme in schemes {
            let p = min_excluded_prefix(&scheme, 4).map(|(p, _)| p);
            let h = first_solvable_horizon(&scheme, 4, &gamma());
            assert_eq!(h, p, "{}", scheme.name());
        }
    }

    #[test]
    fn avoid_prefix_horizon_is_prefix_length() {
        for w0 in ["w", "wb", "b-w"] {
            let scheme = ClassicScheme::AvoidPrefix(w0.parse().unwrap());
            assert_eq!(
                first_solvable_horizon(&scheme, 5, &gamma()),
                Some(w0.len()),
                "{w0}"
            );
        }
    }

    #[test]
    fn canonical_minimal_obstruction_unsolvable_at_horizons() {
        // Pref(L) = Γ* for the canonical minimal obstruction, so the
        // checker must reject every horizon.
        let l = CanonicalMinimalObstruction;
        for k in 0..=5 {
            assert!(!solvable_by(&l, k, &gamma()).is_solvable(), "k={k}");
        }
    }

    #[test]
    fn empty_scheme_is_vacuously_solvable() {
        let l = ClassicScheme::AvoidPrefix(Word::empty());
        assert_eq!(solvable_by(&l, 3, &gamma()), CheckResult::Empty);
        assert!(solvable_by(&l, 3, &gamma()).is_solvable());
    }

    #[test]
    fn chain_grows_with_horizon() {
        // Deeper horizons need longer chains to connect 0 to 1 — the
        // quantitative face of "the impossibility proof gets harder".
        let mut prev_len = 0;
        for k in 1..=5 {
            let CheckResult::Unsolvable { chain } = solvable_by(&classic::r1(), k, &gamma())
            else {
                panic!("R1 unsolvable");
            };
            assert!(chain.len() >= prev_len, "k={k}");
            prev_len = chain.len();
        }
        assert!(prev_len >= 4);
    }

    #[test]
    fn solvable_components_structure() {
        let CheckResult::Solvable { views, components } =
            solvable_by(&classic::s0(), 1, &gamma())
        else {
            panic!("S0 solvable at 1");
        };
        // Four executions (input pairs) over the single Full prefix:
        // 8 final views in 4 components.
        assert_eq!(views, 8);
        assert_eq!(components, 4);
    }

    #[test]
    fn parallel_checker_matches_sequential() {
        let schemes: Vec<ClassicScheme> = vec![
            classic::s0(),
            classic::s1(),
            classic::c1(),
            classic::r1(),
            classic::almost_fair(),
            classic::total_budget(2),
            ClassicScheme::AvoidPrefix("wb".parse().unwrap()),
        ];
        for scheme in &schemes {
            for k in 0..=4 {
                let seq = solvable_by(scheme, k, &gamma());
                let par = solvable_by_par(scheme, k, &gamma());
                assert_eq!(seq, par, "{} k={k}", scheme.name());
            }
        }
    }

    #[test]
    fn parallel_checker_on_sigma_alphabet() {
        for k in 0..=3 {
            assert_eq!(
                solvable_by(&classic::s2(), k, &sigma_alphabet()),
                solvable_by_par(&classic::s2(), k, &sigma_alphabet()),
            );
        }
    }

    #[test]
    fn gamma_minus_half_pair_unsolvable_bounded() {
        // Γω \ {-(w)} is an obstruction; its prefixes are all of Γ*, so
        // the checker rejects every horizon.
        let l = ClassicScheme::GammaMinus(vec!["-(w)".parse().unwrap()]);
        for k in 0..=5 {
            assert!(!solvable_by(&l, k, &gamma()).is_solvable(), "k={k}");
        }
    }

    #[test]
    fn solvable_pair_scheme_still_unbounded_horizon() {
        // Γω \ {-(w), b(w)} IS solvable (Theorem III.8) but with
        // unbounded round complexity: Pref(L) = Γ*, so no fixed-horizon
        // algorithm exists. The checker and the theorem answer different
        // questions — and both answers are right.
        let l = ClassicScheme::GammaMinus(vec!["-(w)".parse().unwrap(), "b(w)".parse().unwrap()]);
        assert!(minobs_core::theorem::decide_gamma(&l).is_solvable());
        for k in 0..=5 {
            assert!(!solvable_by(&l, k, &gamma()).is_solvable(), "k={k}");
        }
    }

    #[test]
    fn generous_budget_matches_unbudgeted() {
        for scheme in [classic::s0(), classic::c1(), classic::r1()] {
            for k in 0..=3 {
                assert_eq!(
                    solvable_by_budgeted(&scheme, k, &gamma(), Budget::UNLIMITED),
                    solvable_by(&scheme, k, &gamma()),
                    "{} k={k}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn exhausted_budget_reports_partial_horizon() {
        // R1's frontier at depth 4 is far beyond 50 cumulative states,
        // so the check must stop early — deterministically, since a
        // states-only budget never consults the clock.
        let r = solvable_by_budgeted(&classic::r1(), 6, &gamma(), Budget::states(50));
        let CheckResult::BudgetExhausted {
            horizon_reached,
            frontier_size,
        } = r
        else {
            panic!("expected BudgetExhausted, got {r:?}");
        };
        assert!(!r.is_solvable());
        assert!(horizon_reached < 6, "stopped at {horizon_reached}");
        assert!(frontier_size > 0);
        // Determinism: the same budget stops at the same point.
        assert_eq!(
            solvable_by_budgeted(&classic::r1(), 6, &gamma(), Budget::states(50)),
            r
        );
    }

    #[test]
    fn budget_never_cuts_a_completed_check_short() {
        // A budget big enough for the run returns the real verdict —
        // the final frontier is never charged against further work.
        let full = solvable_by(&classic::s1(), 2, &gamma());
        assert_eq!(
            solvable_by_budgeted(&classic::s1(), 2, &gamma(), Budget::states(100_000)),
            full
        );
    }

    #[test]
    fn parallel_budgeted_degrades_at_the_same_round() {
        for budget in [Budget::states(50), Budget::states(10_000), Budget::UNLIMITED] {
            assert_eq!(
                solvable_by_par_budgeted(&classic::r1(), 5, &gamma(), budget),
                solvable_by_budgeted(&classic::r1(), 5, &gamma(), budget),
                "{budget:?}"
            );
        }
    }

    #[test]
    fn budgeted_horizon_sweep_surfaces_exhaustion() {
        // Unlimited budget reproduces the plain sweep.
        assert_eq!(
            first_solvable_horizon_budgeted(&classic::c1(), 4, &gamma(), Budget::UNLIMITED),
            HorizonOutcome::Solvable(2)
        );
        assert_eq!(
            first_solvable_horizon_budgeted(&classic::r1(), 3, &gamma(), Budget::UNLIMITED),
            HorizonOutcome::UnsolvableWithin(3)
        );
        // A tiny cumulative budget dies mid-sweep and says where.
        let out = first_solvable_horizon_budgeted(&classic::r1(), 6, &gamma(), Budget::states(40));
        let HorizonOutcome::BudgetExhausted {
            at_horizon,
            horizon_reached,
            frontier_size,
        } = out
        else {
            panic!("expected BudgetExhausted, got {out:?}");
        };
        assert!(at_horizon <= 6);
        assert!(horizon_reached < at_horizon || at_horizon == 0);
        assert!(frontier_size > 0);
    }

    #[test]
    fn exhaustion_emits_budget_exhausted_event() {
        use minobs_obs::{MemoryRecorder, TraceEvent};
        let mut rec = MemoryRecorder::new();
        let r = solvable_by_budgeted_with_recorder(
            &classic::r1(),
            6,
            &gamma(),
            Budget::states(50),
            &mut rec,
        );
        let CheckResult::BudgetExhausted {
            horizon_reached,
            frontier_size,
        } = r
        else {
            panic!("expected BudgetExhausted");
        };
        let events: Vec<_> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BudgetExhausted {
                    horizon,
                    frontier,
                    states,
                } => Some((*horizon, *frontier, *states)),
                _ => None,
            })
            .collect();
        assert_eq!(events.len(), 1);
        let (horizon, frontier, states) = events[0];
        assert_eq!(horizon, horizon_reached);
        assert_eq!(frontier, frontier_size);
        assert!(frontier <= states, "trace_lint invariant");
    }

    #[test]
    fn checker_emits_bracketed_spans_per_round() {
        use minobs_obs::{MemoryRecorder, TraceEvent};
        let k = 3;
        let mut rec = MemoryRecorder::new();
        solvable_by_with_recorder(&classic::c1(), k, &gamma(), &mut rec);

        let mut stack: Vec<u64> = Vec::new();
        let mut seen_ids = std::collections::BTreeSet::new();
        let mut names = Vec::new();
        for event in rec.events() {
            match event {
                TraceEvent::SpanStart { span_id, name, .. } => {
                    assert!(seen_ids.insert(*span_id), "span ids must be unique");
                    stack.push(*span_id);
                    names.push(name.clone());
                }
                TraceEvent::SpanEnd { span_id, .. } => {
                    assert_eq!(stack.pop(), Some(*span_id), "spans must nest");
                }
                _ => {}
            }
        }
        assert!(stack.is_empty(), "all spans closed");
        let expected: Vec<String> = (0..k)
            .flat_map(|_| ["checker_expand".to_string(), "checker_dedup".to_string()])
            .chain(["checker_decide".to_string()])
            .collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn checker_progress_fires_at_every_stride_crossing() {
        use minobs_obs::{MemoryRecorder, TraceEvent};
        let mut rec = MemoryRecorder::new();
        solvable_by_with_recorder(&classic::r1(), 8, &gamma(), &mut rec);

        // Replay the frontier trajectory to predict the heartbeats.
        let mut cumulative = 4usize; // round-0 frontier: 4 input pairs
        let mut mark = cumulative / CHECKER_PROGRESS_STRIDE;
        let mut expected = Vec::new();
        for event in rec.events() {
            if let TraceEvent::CheckerRound {
                round, frontier, ..
            } = event
            {
                cumulative += frontier;
                if cumulative / CHECKER_PROGRESS_STRIDE > mark {
                    mark = cumulative / CHECKER_PROGRESS_STRIDE;
                    expected.push((*round, *frontier, cumulative));
                }
            }
        }
        let observed: Vec<(usize, usize, usize)> = rec
            .events()
            .iter()
            .filter_map(|event| match event {
                TraceEvent::CheckerProgress {
                    round,
                    frontier,
                    states,
                } => Some((*round, *frontier, *states)),
                _ => None,
            })
            .collect();
        assert_eq!(observed, expected);
        assert!(
            !observed.is_empty(),
            "an 8-round sweep must cross the progress stride at least once"
        );
    }

    use minobs_core::word::Word;
    use minobs_core::scheme::OmissionScheme;
}
