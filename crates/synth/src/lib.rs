//! # minobs-synth — full-information protocols and mechanical bivalency
//!
//! The impossibility half of Theorem III.8 argues over *all* algorithms.
//! This crate makes that quantification finite and executable through the
//! classical full-information reduction:
//!
//! Any `k`-round algorithm's output is a function of the process's
//! *view* — its input plus the (recursively nested) views it received.
//! Conversely any assignment of outputs to views *is* an algorithm. So:
//!
//! > a scheme `L` admits an algorithm in which both processes decide at
//! > round `k` **iff** there is a decision map on round-`k` views that is
//! > constant on every execution-connected component and respects the
//! > validity pins.
//!
//! [`checker::solvable_by`] decides exactly that with a union-find over
//! interned views ([`views`]), enumerating `Pref_k(L)` level-
//! synchronously. When the answer is *no*, it returns the **bivalency
//! chain**: the sequence of executions connecting the all-0 execution to
//! the all-1 execution through indistinguishable views — the
//! combinatorial skeleton of Section III-C's impossibility proof, and of
//! the "connected components of the configuration space" the paper's
//! conclusion alludes to.
//!
//! Two structural facts fall out and are tested:
//!
//! * the checker only sees `Pref_k(L)`, so `first_solvable_horizon`
//!   equals the paper's round-complexity bound `p` of Corollary III.14 /
//!   Proposition III.15 whenever `p` exists, and is `∞` exactly when
//!   `Pref(L) = Γ*` (where only unbounded-round algorithms can exist);
//! * obstructions (R1, S2, the canonical minimal obstruction) stay
//!   unsolvable at *every* horizon, with ever-longer bivalency chains.
//!
//! ```
//! use minobs_core::prelude::*;
//! use minobs_synth::checker::{gamma_alphabet, solvable_by, CheckResult};
//!
//! // Γω has no 2-round algorithm; the certificate is a 19-step chain of
//! // pairwise-indistinguishable executions connecting the all-0 run to
//! // the all-1 run.
//! let CheckResult::Unsolvable { chain } =
//!     solvable_by(&classic::r1(), 2, &gamma_alphabet())
//! else { panic!("Γω is an obstruction") };
//! assert_eq!(chain.len(), 19); // 2·3^k + 1 at horizon k = 2
//!
//! // S1 becomes solvable at exactly its round bound.
//! assert!(solvable_by(&classic::s1(), 2, &gamma_alphabet()).is_solvable());
//! ```

pub mod cache;
pub mod checker;
pub mod views;

pub use cache::{
    first_solvable_horizon_cached, solvable_by_cached, CacheAnswer, CachedCheck, HorizonVerdicts,
};
pub use checker::{
    first_solvable_horizon, first_solvable_horizon_budgeted, solvable_by, solvable_by_budgeted,
    solvable_by_par, solvable_by_par_budgeted, Budget, ChainStep, CheckResult, HorizonOutcome,
};
pub use views::{ViewArena, ViewId};
