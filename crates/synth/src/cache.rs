//! Monotone horizon-verdict caching for the bounded checker.
//!
//! Solvability at a fixed horizon is monotone in the horizon: a round-`k`
//! algorithm also decides (by ignoring later rounds' information) at any
//! `k' ≥ k`, because round-`k'` views refine round-`k` views and every
//! allowed `k`-prefix extends to an allowed `k'`-prefix within the same
//! scheme. Dually, unsolvability propagates downward: if no decision map
//! exists on round-`k` views, none exists on the coarser round-`k'` views
//! for `k' ≤ k`. (The vacuous [`CheckResult::Empty`] verdict — no allowed
//! prefix of length `k` at all — is upward-monotone too, since `Pref(L)`
//! is prefix-closed.)
//!
//! [`HorizonVerdicts`] exploits this: it stores only the two boundary
//! horizons — the smallest known-solvable and the largest known-unsolvable
//! — and answers every query at or beyond a boundary by *subsumption*
//! instead of re-running the exponential full-information construction.
//! [`solvable_by_cached`] and [`first_solvable_horizon_cached`] are the
//! cache-aware entry points; the `minobs-svc` daemon shards many
//! `HorizonVerdicts` values behind canonical scheme keys.

use minobs_core::prelude::Letter;
use minobs_core::scheme::OmissionScheme;
use serde_json::{Map, Value};

use crate::checker::{
    solvable_by_budgeted, Budget, CheckResult, HorizonOutcome,
};

/// The monotone verdict summary for one (scheme, alphabet) pair.
///
/// Invariant: when both boundaries are known,
/// `max_unsolvable < min_solvable` — anything else would contradict
/// horizon monotonicity and indicates the two verdicts came from
/// different schemes (a cache-key collision).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HorizonVerdicts {
    min_solvable: Option<usize>,
    max_unsolvable: Option<usize>,
}

/// How a cached lookup answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAnswer {
    /// The queried horizon is exactly a recorded boundary.
    Exact {
        /// The cached verdict.
        solvable: bool,
    },
    /// The queried horizon is answered by monotone subsumption from a
    /// boundary proved at a *different* horizon.
    Subsumed {
        /// The inferred verdict.
        solvable: bool,
        /// The boundary horizon the verdict was actually proved at.
        proven_at: usize,
    },
}

impl CacheAnswer {
    /// The verdict, regardless of how it was derived.
    pub fn solvable(&self) -> bool {
        match *self {
            CacheAnswer::Exact { solvable } | CacheAnswer::Subsumed { solvable, .. } => solvable,
        }
    }

    /// `true` when the answer came from a different horizon's verdict.
    pub fn is_subsumed(&self) -> bool {
        matches!(self, CacheAnswer::Subsumed { .. })
    }
}

impl HorizonVerdicts {
    /// An empty summary: every lookup misses.
    pub fn new() -> HorizonVerdicts {
        HorizonVerdicts::default()
    }

    /// The smallest horizon known solvable, if any.
    pub fn min_solvable(&self) -> Option<usize> {
        self.min_solvable
    }

    /// The largest horizon known unsolvable, if any.
    pub fn max_unsolvable(&self) -> Option<usize> {
        self.max_unsolvable
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.min_solvable.is_none() && self.max_unsolvable.is_none()
    }

    /// Records a definite verdict for horizon `k`, tightening the
    /// matching boundary. Only definite verdicts may be recorded —
    /// budget-exhausted partial answers must not reach here.
    ///
    /// # Panics
    /// In debug builds, when the new verdict contradicts monotonicity
    /// (recording `solvable@k` with `k ≤ max_unsolvable`, or vice versa)
    /// — the caller mixed verdicts from different schemes.
    pub fn record(&mut self, k: usize, solvable: bool) {
        if solvable {
            debug_assert!(
                self.max_unsolvable.is_none_or(|m| m < k),
                "solvable@{k} contradicts unsolvable@{:?}",
                self.max_unsolvable
            );
            if self.min_solvable.is_none_or(|m| k < m) {
                self.min_solvable = Some(k);
            }
        } else {
            debug_assert!(
                self.min_solvable.is_none_or(|m| k < m),
                "unsolvable@{k} contradicts solvable@{:?}",
                self.min_solvable
            );
            if self.max_unsolvable.is_none_or(|m| k > m) {
                self.max_unsolvable = Some(k);
            }
        }
    }

    /// Reassembles a summary from its two boundaries, e.g. parsed back
    /// out of a persisted record. `None` when the pair contradicts
    /// monotonicity (`max_unsolvable >= min_solvable`) — a corrupt or
    /// cross-scheme record must be rejected, not recorded.
    pub fn from_boundaries(
        min_solvable: Option<usize>,
        max_unsolvable: Option<usize>,
    ) -> Option<HorizonVerdicts> {
        if let (Some(s), Some(u)) = (min_solvable, max_unsolvable) {
            if u >= s {
                return None;
            }
        }
        Some(HorizonVerdicts {
            min_solvable,
            max_unsolvable,
        })
    }

    /// The summary as a stable JSON object, the on-disk shape used by
    /// the `minobs-svc` write-ahead verdict log (`minobs/wal/v1`).
    pub fn to_json(&self) -> Value {
        let bound = |b: Option<usize>| b.map_or(Value::Null, |k| Value::from(k as u64));
        let mut map = Map::new();
        map.insert("min_solvable".to_string(), bound(self.min_solvable));
        map.insert("max_unsolvable".to_string(), bound(self.max_unsolvable));
        Value::Object(map)
    }

    /// Parses [`HorizonVerdicts::to_json`] output. `None` on a missing
    /// field, a non-integer boundary, or a monotonicity-violating pair.
    pub fn from_json(value: &Value) -> Option<HorizonVerdicts> {
        let bound = |name: &str| -> Option<Option<usize>> {
            match value.get(name)? {
                Value::Null => Some(None),
                v => Some(Some(usize::try_from(v.as_u64()?).ok()?)),
            }
        };
        HorizonVerdicts::from_boundaries(bound("min_solvable")?, bound("max_unsolvable")?)
    }

    /// Answers a horizon-`k` query from the recorded boundaries, or
    /// `None` when `k` lies in the unknown gap between them.
    pub fn lookup(&self, k: usize) -> Option<CacheAnswer> {
        if let Some(m) = self.min_solvable {
            if k >= m {
                return Some(if k == m {
                    CacheAnswer::Exact { solvable: true }
                } else {
                    CacheAnswer::Subsumed {
                        solvable: true,
                        proven_at: m,
                    }
                });
            }
        }
        if let Some(m) = self.max_unsolvable {
            if k <= m {
                return Some(if k == m {
                    CacheAnswer::Exact { solvable: false }
                } else {
                    CacheAnswer::Subsumed {
                        solvable: false,
                        proven_at: m,
                    }
                });
            }
        }
        None
    }
}

/// Result of a cache-aware horizon check.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedCheck {
    /// The cache answered without running the checker.
    Cached(CacheAnswer),
    /// The checker ran; its verdict (when definite) is now recorded.
    Fresh(CheckResult),
}

impl CachedCheck {
    /// The verdict, when one exists. `None` only for a fresh
    /// budget-exhausted result.
    pub fn solvable(&self) -> Option<bool> {
        match self {
            CachedCheck::Cached(answer) => Some(answer.solvable()),
            CachedCheck::Fresh(CheckResult::BudgetExhausted { .. }) => None,
            CachedCheck::Fresh(result) => Some(result.is_solvable()),
        }
    }
}

/// [`solvable_by_budgeted`] through a [`HorizonVerdicts`] summary: a
/// boundary at or beyond `k` answers immediately, otherwise the checker
/// runs and its definite verdict tightens the summary.
pub fn solvable_by_cached(
    scheme: &dyn OmissionScheme,
    k: usize,
    alphabet: &[Letter],
    budget: Budget,
    cache: &mut HorizonVerdicts,
) -> CachedCheck {
    if let Some(answer) = cache.lookup(k) {
        return CachedCheck::Cached(answer);
    }
    let result = solvable_by_budgeted(scheme, k, alphabet, budget);
    if !matches!(result, CheckResult::BudgetExhausted { .. }) {
        cache.record(k, result.is_solvable());
    }
    CachedCheck::Fresh(result)
}

/// [`crate::checker::first_solvable_horizon_budgeted`] through a
/// [`HorizonVerdicts`] summary.
///
/// The sweep starts just above the known-unsolvable boundary and stops
/// at the known-solvable boundary (which caps the answer from above), so
/// a warm cache skips both tails. Unlike the uncached sweep, `budget`
/// applies to each inner check separately — the cache makes the number
/// of inner checks unpredictable, so a cumulative cap would make warm
/// and cold sweeps behave differently.
pub fn first_solvable_horizon_cached(
    scheme: &dyn OmissionScheme,
    max_k: usize,
    alphabet: &[Letter],
    budget: Budget,
    cache: &mut HorizonVerdicts,
) -> HorizonOutcome {
    let start = cache.max_unsolvable().map_or(0, |m| m + 1);
    // A cached solvable boundary within range bounds the answer above;
    // horizons at or beyond it never need checking.
    let ceiling = cache.min_solvable().filter(|&m| m <= max_k);
    let sweep_end = ceiling.unwrap_or(max_k + 1);
    for k in start..sweep_end {
        match solvable_by_cached(scheme, k, alphabet, budget, cache) {
            CachedCheck::Fresh(CheckResult::BudgetExhausted {
                horizon_reached,
                frontier_size,
            }) => {
                return HorizonOutcome::BudgetExhausted {
                    at_horizon: k,
                    horizon_reached,
                    frontier_size,
                }
            }
            answer => {
                if answer.solvable() == Some(true) {
                    return HorizonOutcome::Solvable(k);
                }
            }
        }
    }
    match ceiling {
        Some(m) => HorizonOutcome::Solvable(m),
        None => HorizonOutcome::UnsolvableWithin(max_k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{gamma_alphabet, solvable_by};
    use minobs_core::prelude::*;

    #[test]
    fn boundaries_tighten_and_subsume() {
        let mut cache = HorizonVerdicts::new();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(3), None);

        cache.record(2, false);
        cache.record(5, true);
        cache.record(7, true); // looser than 5: ignored
        cache.record(1, false); // looser than 2: ignored
        assert_eq!(cache.min_solvable(), Some(5));
        assert_eq!(cache.max_unsolvable(), Some(2));

        assert_eq!(
            cache.lookup(5),
            Some(CacheAnswer::Exact { solvable: true })
        );
        assert_eq!(
            cache.lookup(9),
            Some(CacheAnswer::Subsumed {
                solvable: true,
                proven_at: 5
            })
        );
        assert_eq!(
            cache.lookup(2),
            Some(CacheAnswer::Exact { solvable: false })
        );
        assert_eq!(
            cache.lookup(0),
            Some(CacheAnswer::Subsumed {
                solvable: false,
                proven_at: 2
            })
        );
        // The gap stays unknown.
        assert_eq!(cache.lookup(3), None);
        assert_eq!(cache.lookup(4), None);
    }

    #[test]
    fn json_round_trips_and_rejects_contradictions() {
        let mut cache = HorizonVerdicts::new();
        assert_eq!(HorizonVerdicts::from_json(&cache.to_json()), Some(cache));
        cache.record(2, false);
        assert_eq!(HorizonVerdicts::from_json(&cache.to_json()), Some(cache));
        cache.record(5, true);
        let json = cache.to_json();
        assert_eq!(json.get("min_solvable").and_then(Value::as_u64), Some(5));
        assert_eq!(json.get("max_unsolvable").and_then(Value::as_u64), Some(2));
        assert_eq!(HorizonVerdicts::from_json(&json), Some(cache));

        // A record whose boundaries contradict monotonicity is refused.
        let bad: Value =
            serde_json::from_str(r#"{"min_solvable":2,"max_unsolvable":4}"#).unwrap();
        assert_eq!(HorizonVerdicts::from_json(&bad), None);
        assert_eq!(HorizonVerdicts::from_json(&Value::Null), None);
        let partial: Value = serde_json::from_str(r#"{"min_solvable":2}"#).unwrap();
        assert_eq!(HorizonVerdicts::from_json(&partial), None);
    }

    #[test]
    fn cached_check_matches_direct_on_s1() {
        // S1 first becomes solvable at horizon 2.
        let scheme = classic::s1();
        let alphabet = gamma_alphabet();
        let mut cache = HorizonVerdicts::new();
        for k in [0usize, 1, 2, 3, 4] {
            let direct = solvable_by(&scheme, k, &alphabet).is_solvable();
            let cached = solvable_by_cached(&scheme, k, &alphabet, Budget::UNLIMITED, &mut cache);
            assert_eq!(cached.solvable(), Some(direct), "horizon {k}");
        }
        // A second pass answers everything from the two boundaries.
        for k in [0usize, 1, 2, 3, 4] {
            let cached = solvable_by_cached(&scheme, k, &alphabet, Budget::UNLIMITED, &mut cache);
            assert!(matches!(cached, CachedCheck::Cached(_)), "horizon {k}");
        }
        assert_eq!(cache.min_solvable(), Some(2));
        assert_eq!(cache.max_unsolvable(), Some(1));
    }

    #[test]
    fn budget_exhaustion_is_never_recorded() {
        let scheme = classic::r1();
        let alphabet = gamma_alphabet();
        let mut cache = HorizonVerdicts::new();
        let result = solvable_by_cached(&scheme, 6, &alphabet, Budget::states(2), &mut cache);
        assert!(matches!(
            result,
            CachedCheck::Fresh(CheckResult::BudgetExhausted { .. })
        ));
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_sweep_agrees_with_uncached() {
        let scheme = classic::s1();
        let alphabet = gamma_alphabet();
        let mut cache = HorizonVerdicts::new();
        let cold =
            first_solvable_horizon_cached(&scheme, 5, &alphabet, Budget::UNLIMITED, &mut cache);
        assert_eq!(cold, HorizonOutcome::Solvable(2));
        // Warm: the boundaries answer without any checker run; the ceiling
        // short-circuits even when the sweep range is empty.
        let warm =
            first_solvable_horizon_cached(&scheme, 5, &alphabet, Budget::states(1), &mut cache);
        assert_eq!(warm, HorizonOutcome::Solvable(2));

        let mut cache = HorizonVerdicts::new();
        let unsolvable =
            first_solvable_horizon_cached(&classic::r1(), 3, &alphabet, Budget::UNLIMITED, &mut cache);
        assert_eq!(unsolvable, HorizonOutcome::UnsolvableWithin(3));
        assert_eq!(cache.max_unsolvable(), Some(3));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn scheme_pool() -> Vec<ClassicScheme> {
            vec![
                classic::s0(),
                classic::t_white(),
                classic::c1(),
                classic::s1(),
                classic::r1(),
                classic::s2(),
                classic::fair_gamma(),
                classic::almost_fair(),
                classic::total_budget(2),
                ClassicScheme::AvoidPrefix("-w".parse().unwrap()),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Subsumption soundness: querying horizons in any order
            /// through one warm cache must agree with the direct checker
            /// at every horizon — a cached or subsumed answer is never
            /// allowed to differ from recomputation.
            #[test]
            fn prop_subsumption_never_contradicts_direct(
                scheme_pick in 0usize..10,
                horizons in proptest::collection::vec(0usize..5, 1..8),
            ) {
                let scheme = &scheme_pool()[scheme_pick];
                let alphabet = gamma_alphabet();
                let mut cache = HorizonVerdicts::new();
                for &k in &horizons {
                    let direct = solvable_by(scheme, k, &alphabet).is_solvable();
                    let cached =
                        solvable_by_cached(scheme, k, &alphabet, Budget::UNLIMITED, &mut cache);
                    prop_assert_eq!(
                        cached.solvable(),
                        Some(direct),
                        "scheme {} horizon {}",
                        scheme.name(),
                        k
                    );
                }
            }
        }
    }
}
