//! # minobs-net — consensus on arbitrary networks (Section V)
//!
//! Theorem V.1: on a connected graph `G` with at most `f` message losses
//! per round, Consensus is solvable **iff** `f < c(G)`. This crate holds
//! both directions, executably:
//!
//! * [`flood`] — the possibility side: a broadcast/flooding consensus that
//!   decides in `n - 1` rounds whenever `f < c(G)` (the Santoro–Widmayer
//!   style algorithm the paper cites);
//! * [`reduction`] — the impossibility side's machinery: the bijection `ρ`
//!   between `Γ_C` (cut letters on `G`) and `Γ` (two-process letters), and
//!   the emulation Algorithms 2–3 that fold a network algorithm on `G`
//!   into a two-process algorithm, round for round;
//! * [`alg_l`] — Algorithm 4 (`A_L`): the representatives `a₁, b₁` run the
//!   two-process `A_w` across the cut link and flood the decision through
//!   their connected sides;
//! * [`scheme_net`] — the network omission schemes `O_f^ω` and `Γ_C^ω` as
//!   checkable script predicates.
//!
//! ```
//! use minobs_graphs::{edge_connectivity, generators};
//! use minobs_net::{DecisionRule, FloodConsensus};
//! use minobs_sim::adversary::{BudgetChecked, RandomOmissions};
//! use minobs_sim::network::run_network;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Theorem V.1, possibility side: f < c(G) ⇒ flooding decides in n-1
//! // rounds under any O_f adversary.
//! let g = generators::torus(3, 3);
//! let f = edge_connectivity(&g) - 1;
//! let inputs: Vec<u64> = (0..9).collect();
//! let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
//! let mut adv = BudgetChecked::new(RandomOmissions::new(f, StdRng::seed_from_u64(1)), f);
//! let out = run_network(&g, nodes, &mut adv, 20);
//! assert_eq!(out.verdict.expect_consensus(), 0);
//! assert_eq!(out.stats.rounds, 8); // n - 1
//! ```

pub mod alg_l;
pub mod flood;
pub mod reduction;
pub mod scheme_net;

pub use alg_l::AlgorithmL;
pub use flood::{DecisionRule, FloodConsensus};
pub use reduction::{rho, rho_inverse, EmulatedSide};
