//! Algorithm 4 (`A_L`): consensus on `G` under a solvable sub-scheme of
//! `Γ_C^ω`.
//!
//! The representatives `a₁` and `b₁` (endpoints of the first cut edge) run
//! the two-process `A_w` across their link — under `Γ_C` that link
//! behaves exactly like the two-process channel under `ρ(L)`. Every other
//! node relays: once a node learns the decided value it rebroadcasts it
//! for one round and then decides. Because `Γ_C` never drops intra-side
//! messages and both sides are connected, the value floods each side in at
//! most its diameter.

use minobs_bigint::UBig;
use minobs_core::algorithm::{AwMessage, AwProcess};
use minobs_core::engine::TwoProcessProtocol;
use minobs_core::letter::Role;
use minobs_core::scenario::Scenario;
use minobs_graphs::{CutPartition, Graph};
use minobs_sim::network::NodeProtocol;

/// The message type of `A_L`.
#[derive(Debug, Clone)]
pub enum ALMsg {
    /// Phase 1: an `A_w` message between the representatives.
    Aw {
        /// The sender's initial value.
        init: bool,
        /// The sender's phantom index.
        ind: UBig,
    },
    /// Phase 2: the decided value, flooding outward.
    Value(u64),
}

/// One node of Algorithm 4.
pub struct AlgorithmL {
    id: usize,
    input: u64,
    neighbors: Vec<usize>,
    kind: NodeKind,
    /// The learned value, before it has been forwarded.
    got: Option<u64>,
    /// Set once the value has been rebroadcast; the node then decides.
    decision: Option<u64>,
}

enum NodeKind {
    /// A representative runs `A_w` against its partner.
    Representative { aw: AwProcess, partner: usize },
    /// Everyone else waits for the value.
    Relay,
}

impl AlgorithmL {
    /// Builds the fleet for `graph` given the cut partition, the forbidden
    /// scenario `w` (a witness for the solvability of `ρ(L)`), and binary
    /// inputs (`0`/`1`) per node.
    ///
    /// # Panics
    /// Panics when inputs are not binary or sized to the graph.
    pub fn fleet(
        graph: &Graph,
        partition: &CutPartition,
        w: &Scenario,
        inputs: &[u64],
    ) -> Vec<AlgorithmL> {
        assert_eq!(inputs.len(), graph.vertex_count(), "one input per node");
        assert!(
            inputs.iter().all(|&v| v <= 1),
            "A_L carries binary consensus"
        );
        let (a1, b1) = partition.representatives();
        (0..graph.vertex_count())
            .map(|id| {
                let kind = if id == a1 {
                    NodeKind::Representative {
                        aw: AwProcess::new(Role::White, inputs[id] != 0, w.clone()),
                        partner: b1,
                    }
                } else if id == b1 {
                    NodeKind::Representative {
                        aw: AwProcess::new(Role::Black, inputs[id] != 0, w.clone()),
                        partner: a1,
                    }
                } else {
                    NodeKind::Relay
                };
                AlgorithmL {
                    id,
                    input: inputs[id],
                    neighbors: graph.neighbors(id).to_vec(),
                    kind,
                    got: None,
                    decision: None,
                }
            })
            .collect()
    }

    /// The node id.
    pub fn id(&self) -> usize {
        self.id
    }
}

impl NodeProtocol for AlgorithmL {
    type Msg = ALMsg;

    fn input(&self) -> u64 {
        self.input
    }

    fn send(&self, _round: usize) -> Vec<(usize, ALMsg)> {
        // A node that has learned the value but not yet forwarded it
        // rebroadcasts once.
        if let Some(v) = self.got {
            return self
                .neighbors
                .iter()
                .map(|&nb| (nb, ALMsg::Value(v)))
                .collect();
        }
        match &self.kind {
            NodeKind::Representative { aw, partner } => match aw.outgoing() {
                Some(AwMessage { init, ind }) => vec![(*partner, ALMsg::Aw { init, ind })],
                None => Vec::new(),
            },
            NodeKind::Relay => Vec::new(),
        }
    }

    fn advance(&mut self, _round: usize, received: Vec<(usize, ALMsg)>) {
        // Forwarding completes: decide.
        if let Some(v) = self.got.take() {
            self.decision = Some(v);
            return;
        }
        // Look for a flooded value first — it ends phase 1 for a
        // representative too (its partner may decide earlier).
        let value = received.iter().find_map(|(_, m)| match m {
            ALMsg::Value(v) => Some(*v),
            _ => None,
        });
        if let Some(v) = value {
            self.got = Some(v);
            return;
        }
        if let NodeKind::Representative { aw, partner } = &mut self.kind {
            let incoming = received.into_iter().find_map(|(from, m)| match m {
                ALMsg::Aw { init, ind } if from == *partner => Some(AwMessage { init, ind }),
                _ => None,
            });
            if !aw.halted() {
                aw.advance(incoming);
            }
            if let Some(d) = aw.decision() {
                self.got = Some(d as u64);
            }
        }
    }

    fn decision(&self) -> Option<u64> {
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_graphs::{cut_partition, generators};
    use minobs_sim::adversary::{CutAdversary, NoFault};
    use minobs_sim::network::{run_network, NetVerdict};

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    /// Drives A_L on a graph under the cut adversary scripted by `v`,
    /// with the forbidden witness `w`.
    fn run_al(
        g: &Graph,
        v: &str,
        w: &str,
        inputs: &[u64],
        budget: usize,
    ) -> minobs_sim::network::NetOutcome {
        let p = cut_partition(g).unwrap();
        let fleet = AlgorithmL::fleet(g, &p, &sc(w), inputs);
        let mut adv = CutAdversary::new(&p, sc(v));
        run_network(g, fleet, &mut adv, budget)
    }

    #[test]
    fn al_reaches_consensus_on_barbell_fault_free() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let fleet = AlgorithmL::fleet(&g, &p, &sc("(b)"), &[1, 1, 1, 0, 0, 0]);
        let out = run_network(&g, fleet, &mut NoFault, 64);
        assert!(out.verdict.is_consensus(), "{:?}", out.verdict);
    }

    #[test]
    fn al_consensus_under_gamma_c_scenarios() {
        // Driving scheme: almost-fair (everything except (b)^ω); witness
        // w = (b). Any Γ_C scenario whose ρ-image differs from (b)^ω must
        // reach consensus.
        let g = generators::barbell(3, 2);
        for v in ["(-)", "(w)", "(wb)", "-(b)", "w(b)", "bw(-)"] {
            for inputs in [[0u64, 0, 0, 1, 1, 1], [1, 1, 1, 1, 1, 1], [0, 1, 0, 1, 0, 1]] {
                let out = run_al(&g, v, "(b)", &inputs, 128);
                assert!(
                    out.verdict.is_consensus(),
                    "scenario {v} inputs {inputs:?}: {:?}",
                    out.verdict
                );
            }
        }
    }

    #[test]
    fn al_respects_validity() {
        let g = generators::barbell(3, 2);
        let out = run_al(&g, "(wb)", "(b)", &[1, 1, 1, 1, 1, 1], 128);
        assert_eq!(out.verdict, NetVerdict::Consensus(1));
        let out = run_al(&g, "(w)", "(b)", &[0, 0, 0, 0, 0, 0], 128);
        assert_eq!(out.verdict, NetVerdict::Consensus(0));
    }

    #[test]
    fn al_never_terminates_on_the_forbidden_scenario() {
        // On ρ⁻¹((b)^ω) the representatives' A_w runs forever — exactly
        // the scenario the scheme promises never happens.
        let g = generators::barbell(3, 2);
        let out = run_al(&g, "(b)", "(b)", &[1, 1, 1, 0, 0, 0], 64);
        assert!(matches!(out.verdict, NetVerdict::Undecided { .. }));
    }

    #[test]
    fn al_works_on_other_topologies() {
        for g in [generators::cycle(6), generators::theta(3, 2), generators::star(5)] {
            let n = g.vertex_count();
            let inputs: Vec<u64> = (0..n).map(|v| (v % 2) as u64).collect();
            let out = run_al(&g, "(wb)", "(b)", &inputs, 256);
            assert!(out.verdict.is_consensus(), "{g}: {:?}", out.verdict);
        }
    }

    #[test]
    fn al_value_floods_through_long_sides() {
        // Long path: the decision must relay hop by hop.
        let g = generators::path(8);
        let n = g.vertex_count();
        let inputs: Vec<u64> = (0..n).map(|v| (v == 0) as u64).collect();
        let out = run_al(&g, "(-)", "(b)", &inputs, 256);
        assert!(out.verdict.is_consensus(), "{:?}", out.verdict);
    }
}
