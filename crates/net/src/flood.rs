//! Flooding consensus — the possibility half of Theorem V.1.
//!
//! Every node maintains the vector of initial values it has learned and
//! broadcasts it to all neighbors every round. With at most `f < c(G)`
//! losses per round, each value's knowledge set `K` gains at least one
//! node per round: the cut between `K` and its complement carries at least
//! `c(G) > f` edges, so at least one crossing message survives. After
//! `n - 1` rounds everyone knows every value, and a deterministic rule on
//! the full vector yields agreement.
//!
//! When the adversary exceeds the budget (`f ≥ c(G)`), the knowledge
//! vector can stay incomplete forever; the node then decides on what it
//! has — making the resulting disagreement *observable*, which is exactly
//! what the impossibility experiments measure.

use minobs_sim::network::NodeProtocol;

/// How to pick the decision from the (possibly incomplete) value vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionRule {
    /// Decide the value of the smallest node id known.
    ValueOfMinId,
    /// Decide the minimum value known.
    MinValue,
}

/// One node of the flooding consensus.
#[derive(Debug, Clone)]
pub struct FloodConsensus {
    id: usize,
    input: u64,
    /// `knowledge[v]` = initial value of node `v`, once learned.
    knowledge: Vec<Option<u64>>,
    neighbors: Vec<usize>,
    /// Decide at the end of round `deadline - 1` (i.e. after `deadline`
    /// rounds). Theorem V.1 possibility: `deadline = n - 1` suffices for
    /// `f < c(G)`.
    deadline: usize,
    rule: DecisionRule,
    decision: Option<u64>,
    /// Early-deciding mode: fix the decision as soon as the knowledge
    /// vector is complete, but keep relaying until the deadline — halting
    /// early would break the knowledge-growth argument for the *others*
    /// (a halted node sends nothing, which reads as extra omissions).
    early: bool,
    /// The round at which the decision value was fixed (early mode records
    /// the early round; deadline mode records `deadline - 1`).
    decided_at: Option<usize>,
}

impl FloodConsensus {
    /// Builds node `id` of an `n`-node flooding consensus.
    pub fn new(
        id: usize,
        n: usize,
        input: u64,
        neighbors: Vec<usize>,
        deadline: usize,
        rule: DecisionRule,
    ) -> Self {
        let mut knowledge = vec![None; n];
        knowledge[id] = Some(input);
        FloodConsensus {
            id,
            input,
            knowledge,
            neighbors,
            deadline,
            rule,
            decision: None,
            early: false,
            decided_at: None,
        }
    }

    /// Enables early deciding: the decision value is fixed the moment the
    /// knowledge vector completes (correct under `f < c(G)`: everyone
    /// eventually completes and applies the same rule to the same full
    /// vector), while the node keeps relaying until the deadline so the
    /// knowledge-growth argument stays intact for its peers.
    pub fn early_deciding(mut self) -> Self {
        self.early = true;
        self
    }

    /// The round at which the decision value was fixed.
    pub fn decided_at(&self) -> Option<usize> {
        self.decided_at
    }

    /// Builds the whole fleet for a graph, with deadline `n - 1`.
    pub fn fleet(
        graph: &minobs_graphs::Graph,
        inputs: &[u64],
        rule: DecisionRule,
    ) -> Vec<FloodConsensus> {
        let n = graph.vertex_count();
        assert_eq!(inputs.len(), n, "one input per node");
        (0..n)
            .map(|id| {
                FloodConsensus::new(
                    id,
                    n,
                    inputs[id],
                    graph.neighbors(id).to_vec(),
                    n.saturating_sub(1).max(1),
                    rule,
                )
            })
            .collect()
    }

    /// How many initial values this node has learned.
    pub fn known_count(&self) -> usize {
        self.knowledge.iter().filter(|k| k.is_some()).count()
    }

    /// `true` iff the node knows every initial value.
    pub fn knowledge_complete(&self) -> bool {
        self.knowledge.iter().all(|k| k.is_some())
    }

    fn decide(&mut self, round: usize) {
        if self.decided_at.is_none() {
            self.decided_at = Some(round);
        }
        let value = match self.rule {
            DecisionRule::ValueOfMinId => self
                .knowledge
                .iter()
                .flatten()
                .next()
                .copied()
                .expect("own value always known"),
            DecisionRule::MinValue => self
                .knowledge
                .iter()
                .flatten()
                .copied()
                .min()
                .expect("own value always known"),
        };
        self.decision = Some(value);
    }
}

/// The knowledge vector exchanged each round: `(node, value)` pairs.
pub type KnowledgeMsg = Vec<(usize, u64)>;

impl NodeProtocol for FloodConsensus {
    type Msg = KnowledgeMsg;

    fn input(&self) -> u64 {
        self.input
    }

    fn send(&self, _round: usize) -> Vec<(usize, KnowledgeMsg)> {
        let payload: KnowledgeMsg = self
            .knowledge
            .iter()
            .enumerate()
            .filter_map(|(v, k)| k.map(|val| (v, val)))
            .collect();
        self.neighbors
            .iter()
            .map(|&nb| (nb, payload.clone()))
            .collect()
    }

    fn advance(&mut self, round: usize, received: Vec<(usize, KnowledgeMsg)>) {
        for (_, payload) in received {
            for (v, val) in payload {
                if v < self.knowledge.len() {
                    let slot = &mut self.knowledge[v];
                    debug_assert!(slot.is_none() || *slot == Some(val), "conflicting values");
                    *slot = Some(val);
                }
            }
        }
        if self.early && self.decided_at.is_none() && self.knowledge_complete() {
            // Record the early decision round; the public decision (and
            // hence halting) still waits for the deadline.
            self.decided_at = Some(round);
        }
        if round + 1 >= self.deadline {
            self.decide(round);
        }
    }

    fn decision(&self) -> Option<u64> {
        self.decision
    }
}

/// An id accessor used by experiments.
impl FloodConsensus {
    /// The node id.
    pub fn id(&self) -> usize {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_graphs::{cut_partition, generators};
    use minobs_sim::adversary::{BudgetChecked, CutAdversary, NoFault, RandomOmissions};
    use minobs_sim::network::{run_network, NetVerdict};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inputs(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 10 + 3).collect()
    }

    #[test]
    fn fault_free_decides_in_n_minus_1_rounds() {
        for g in [generators::cycle(6), generators::complete(5), generators::grid(3, 3)] {
            let n = g.vertex_count();
            let nodes = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId);
            let out = run_network(&g, nodes, &mut NoFault, 2 * n);
            assert_eq!(out.verdict, NetVerdict::Consensus(3), "{g}");
            assert_eq!(out.stats.rounds, n - 1, "{g}");
        }
    }

    #[test]
    fn min_value_rule_agrees_too() {
        let g = generators::cycle(5);
        let vals = [9, 2, 7, 5, 4];
        let nodes = FloodConsensus::fleet(&g, &vals, DecisionRule::MinValue);
        let out = run_network(&g, nodes, &mut NoFault, 10);
        assert_eq!(out.verdict, NetVerdict::Consensus(2));
    }

    #[test]
    fn random_f_below_connectivity_still_consensus() {
        // Torus: c(G) = 4; f = 3 random losses per round must not prevent
        // consensus in n - 1 rounds.
        let g = generators::torus(3, 3);
        let n = g.vertex_count();
        for seed in 0..10u64 {
            let nodes = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId);
            let mut adv = BudgetChecked::new(
                RandomOmissions::new(3, StdRng::seed_from_u64(seed)),
                3,
            );
            let out = run_network(&g, nodes, &mut adv, 2 * n);
            assert_eq!(out.verdict, NetVerdict::Consensus(3), "seed {seed}");
        }
    }

    #[test]
    fn cut_adversary_below_budget_cannot_block() {
        // Barbell with 3 bridges: c = 3. An adversary killing only 2 of
        // the 3 bridge directions per round (f = 2 < c) cannot block.
        let g = generators::barbell(4, 3);
        let n = g.vertex_count();
        let p = cut_partition(&g).unwrap();
        // Script: drop 2 of the 3 A→B arcs forever.
        let two_arcs: Vec<_> = p.cut[..2]
            .iter()
            .map(|&(a, b)| minobs_graphs::DirectedEdge::new(a, b))
            .collect();
        let mut adv = minobs_sim::adversary::ScriptedAdversary::repeating(vec![two_arcs]);
        let nodes = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId);
        let out = run_network(&g, nodes, &mut adv, 2 * n);
        assert_eq!(out.verdict, NetVerdict::Consensus(3));
    }

    #[test]
    fn full_cut_adversary_forces_disagreement() {
        // f = c(G): the Γ_C adversary driven by (w)^ω silences A→B
        // forever; the B side never learns node 0's value.
        let g = generators::barbell(3, 2);
        let n = g.vertex_count();
        let p = cut_partition(&g).unwrap();
        let mut adv = CutAdversary::new(&p, "(w)".parse().unwrap());
        let nodes = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId);
        let out = run_network(&g, nodes, &mut adv, 2 * n);
        assert!(
            matches!(out.verdict, NetVerdict::Disagreement { .. }),
            "{:?}",
            out.verdict
        );
    }

    #[test]
    fn knowledge_monotonically_grows_under_budget() {
        let g = generators::cycle(6);
        let nodes = FloodConsensus::fleet(&g, &inputs(6), DecisionRule::ValueOfMinId);
        let mut net = minobs_sim::network::SyncNetwork::new(&g, nodes);
        let mut adv = BudgetChecked::new(
            RandomOmissions::new(1, StdRng::seed_from_u64(5)),
            1,
        );
        let mut prev_total = 6; // each node knows itself
        for _ in 0..5 {
            net.step(&mut adv);
            let total: usize = net.nodes().iter().map(|n| n.known_count()).sum();
            assert!(total >= prev_total, "knowledge never shrinks");
            // At least one value crosses any cut each round: the global
            // count grows until complete.
            if prev_total < 36 {
                assert!(total > prev_total, "knowledge must grow: {prev_total} → {total}");
            }
            prev_total = total;
        }
        assert!(net.nodes().iter().all(|n| n.knowledge_complete()));
    }

    #[test]
    fn early_deciding_fixes_the_value_sooner_and_agrees() {
        // On dense graphs knowledge completes long before n-1 rounds; the
        // early-deciding variant records the earlier round while producing
        // the same verdict as the deadline variant.
        for g in [generators::complete(8), generators::torus(3, 3), generators::cycle(9)] {
            let n = g.vertex_count();
            let vals = inputs(n);
            let plain = FloodConsensus::fleet(&g, &vals, DecisionRule::ValueOfMinId);
            let early: Vec<FloodConsensus> = FloodConsensus::fleet(&g, &vals, DecisionRule::ValueOfMinId)
                .into_iter()
                .map(|node| node.early_deciding())
                .collect();
            let out_plain = run_network(&g, plain, &mut NoFault, 2 * n);

            let mut net = minobs_sim::network::SyncNetwork::new(&g, early);
            while !net.all_halted() {
                net.step(&mut NoFault);
            }
            let early_rounds: Vec<usize> = net
                .nodes()
                .iter()
                .map(|node| node.decided_at().unwrap())
                .collect();
            let decisions: Vec<Option<u64>> = net.nodes().iter().map(|p| {
                use minobs_sim::network::NodeProtocol as _;
                p.decision()
            }).collect();
            assert_eq!(decisions, out_plain.decisions, "{g}");
            // On the complete graph everyone completes at round 0.
            if g.vertex_count() == 8 && g.edge_count() == 28 {
                assert!(early_rounds.iter().all(|&r| r == 0), "{early_rounds:?}");
            }
            // Early rounds never exceed the deadline round.
            assert!(early_rounds.iter().all(|&r| r <= n - 2), "{g}: {early_rounds:?}");
        }
    }

    #[test]
    fn early_deciding_matches_eccentricity_on_cycles() {
        // On a cycle, a node completes once both arcs have covered the
        // ring: ⌈(n-1)/2⌉ rounds fault-free.
        let g = generators::cycle(11);
        let n = g.vertex_count();
        let early: Vec<FloodConsensus> = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId)
            .into_iter()
            .map(|node| node.early_deciding())
            .collect();
        let mut net = minobs_sim::network::SyncNetwork::new(&g, early);
        while !net.all_halted() {
            net.step(&mut NoFault);
        }
        for node in net.nodes() {
            // Completion when the farthest value arrives: eccentricity - 1
            // in 0-based advance rounds = (n-1)/2 - 1 … = 4 for n = 11.
            assert_eq!(node.decided_at(), Some(n / 2 - 1), "node {}", node.id());
        }
    }

    #[test]
    fn crash_adversary_mirrors_example_ii_10() {
        // Example II.10: a crash is, phenomenologically, an omission
        // pattern — from some round on, no message from the victim is
        // transmitted. On networks: a crashed non-essential node delays
        // nothing; a crashed value-holder hides its value.
        use minobs_sim::adversary::CrashAdversary;
        let g = generators::complete(5);
        let n = g.vertex_count();

        // Victim holds the deciding value (node 0, ValueOfMinId) and
        // crashes before sending anything: everyone else decides without
        // its value; the victim still decides (it hears the others) —
        // disagreement.
        let nodes = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId);
        let mut adv = CrashAdversary {
            victim: 0,
            crash_round: 0,
        };
        let out = run_network(&g, nodes, &mut adv, 2 * n);
        assert!(
            matches!(out.verdict, NetVerdict::Disagreement { .. }),
            "{:?}",
            out.verdict
        );

        // Victim crashes after one clean round: its value got out first —
        // consensus survives the crash.
        let nodes = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId);
        let mut adv = CrashAdversary {
            victim: 0,
            crash_round: 1,
        };
        let out = run_network(&g, nodes, &mut adv, 2 * n);
        assert_eq!(out.verdict, NetVerdict::Consensus(3));

        // A crashed *non*-minimal node never matters for this rule.
        let nodes = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId);
        let mut adv = CrashAdversary {
            victim: 3,
            crash_round: 0,
        };
        let out = run_network(&g, nodes, &mut adv, 2 * n);
        assert_eq!(out.verdict, NetVerdict::Consensus(3));
    }

    #[test]
    fn parallel_engine_runs_flood_identically() {
        use minobs_sim::parallel::run_network_parallel;
        let g = generators::torus(3, 4);
        let n = g.vertex_count();
        let seq_nodes = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId);
        let par_nodes = FloodConsensus::fleet(&g, &inputs(n), DecisionRule::ValueOfMinId);
        let seq = run_network(&g, seq_nodes, &mut NoFault, 2 * n);
        let par = run_network_parallel(&g, par_nodes, &mut NoFault, 2 * n, 4);
        assert_eq!(seq.decisions, par.decisions);
        assert_eq!(seq.stats, par.stats);
    }

    #[test]
    fn uniform_inputs_satisfy_validity_under_any_adversary() {
        let g = generators::cycle(5);
        let vals = [4u64; 5];
        let p = cut_partition(&g).unwrap();
        let mut adv = CutAdversary::new(&p, "(wb)".parse().unwrap());
        let nodes = FloodConsensus::fleet(&g, &vals, DecisionRule::ValueOfMinId);
        let out = run_network(&g, nodes, &mut adv, 10);
        // Either consensus on 4 or undecided — never a validity violation
        // or disagreement (everyone holds 4).
        match out.verdict {
            NetVerdict::Consensus(4) => {}
            other => panic!("unexpected verdict {other:?}"),
        }
    }
}
