//! Network omission schemes: `O_f^ω` and `Γ_C^ω` as checkable predicates
//! over omission scripts.
//!
//! A network scenario is an infinite sequence of omission sets (subsets of
//! the directed edges). Experiments and adversaries work with finite
//! scripts or lasso scripts; these helpers validate that a script stays
//! within a scheme, and convert between the two-process scenarios of
//! `minobs-core` and their `Γ_C` interpretations.

use minobs_core::letter::Letter;
use minobs_core::scenario::Scenario;
use minobs_graphs::{CutPartition, DirectedEdge};
use std::collections::BTreeSet;

/// Does every round of the script drop at most `f` messages? (`O_f`,
/// Section V-A.)
pub fn script_within_of(script: &[Vec<DirectedEdge>], f: usize) -> bool {
    script.iter().all(|round| {
        let distinct: BTreeSet<DirectedEdge> = round.iter().copied().collect();
        distinct.len() <= f
    })
}

/// Is every round of the script one of the three `Γ_C` letters for the
/// given partition: no drops, all `A→B` cut arcs, or all `B→A` cut arcs?
pub fn script_within_gamma_c(script: &[Vec<DirectedEdge>], partition: &CutPartition) -> bool {
    let a_to_b: BTreeSet<DirectedEdge> = partition
        .cut
        .iter()
        .map(|&(a, b)| DirectedEdge::new(a, b))
        .collect();
    let b_to_a: BTreeSet<DirectedEdge> = partition
        .cut
        .iter()
        .map(|&(a, b)| DirectedEdge::new(b, a))
        .collect();
    script.iter().all(|round| {
        let set: BTreeSet<DirectedEdge> = round.iter().copied().collect();
        set.is_empty() || set == a_to_b || set == b_to_a
    })
}

/// Expands the first `rounds` letters of a two-process scenario into the
/// `Γ_C` omission script it induces on the partition.
pub fn scenario_to_script(
    scenario: &Scenario,
    partition: &CutPartition,
    rounds: usize,
) -> Vec<Vec<DirectedEdge>> {
    let arc = |&(a, b): &(usize, usize), flip: bool| {
        if flip {
            DirectedEdge::new(b, a)
        } else {
            DirectedEdge::new(a, b)
        }
    };
    (0..rounds)
        .map(|r| match scenario.letter_at(r) {
            Letter::Full => Vec::new(),
            Letter::DropWhite => partition.cut.iter().map(|p| arc(p, false)).collect(),
            Letter::DropBlack => partition.cut.iter().map(|p| arc(p, true)).collect(),
            Letter::DropBoth => {
                let mut v: Vec<DirectedEdge> =
                    partition.cut.iter().map(|p| arc(p, false)).collect();
                v.extend(partition.cut.iter().map(|p| arc(p, true)));
                v
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_graphs::{cut_partition, generators};

    fn de(a: usize, b: usize) -> DirectedEdge {
        DirectedEdge::new(a, b)
    }

    #[test]
    fn of_budget_checks_distinct_edges() {
        assert!(script_within_of(&[vec![de(0, 1)], vec![]], 1));
        assert!(!script_within_of(&[vec![de(0, 1), de(1, 0)]], 1));
        // Duplicates count once.
        assert!(script_within_of(&[vec![de(0, 1), de(0, 1)]], 1));
    }

    #[test]
    fn gamma_c_accepts_only_the_three_letters() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let all_ab: Vec<DirectedEdge> =
            p.cut.iter().map(|&(a, b)| de(a, b)).collect();
        let all_ba: Vec<DirectedEdge> =
            p.cut.iter().map(|&(a, b)| de(b, a)).collect();
        assert!(script_within_gamma_c(&[vec![], all_ab.clone(), all_ba.clone()], &p));
        // Half a cut is not a Γ_C letter.
        assert!(!script_within_gamma_c(&[vec![all_ab[0]]], &p));
        // Mixing directions is not a Γ_C letter.
        assert!(!script_within_gamma_c(&[vec![all_ab[0], all_ba[1]]], &p));
    }

    #[test]
    fn scenario_expansion_is_within_gamma_c_and_of() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let s: Scenario = "w-b(wb)".parse().unwrap();
        let script = scenario_to_script(&s, &p, 12);
        assert!(script_within_gamma_c(&script, &p));
        assert!(script_within_of(&script, p.f()));
        assert_eq!(script[0].len(), 2, "DropWhite kills both A→B arcs");
        assert!(script[1].is_empty());
    }

    #[test]
    fn double_omission_exceeds_gamma_c() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let s: Scenario = "(x)".parse().unwrap();
        let script = scenario_to_script(&s, &p, 4);
        assert!(!script_within_gamma_c(&script, &p));
        assert!(!script_within_of(&script, p.f()));
        assert!(script_within_of(&script, 2 * p.f()));
    }
}
