//! The reduction of Theorem V.1's proof: `ρ : Γ_C → Γ` and the emulation
//! Algorithms 2–3.
//!
//! Given the 3-partition `(A, B, C)` of a graph's edges around a minimum
//! cut, the alphabet `Γ_C` has three letters — nothing lost, all cut
//! messages `A→B` lost, all cut messages `B→A` lost — and `ρ` maps them to
//! the two-process letters `Full`, `DropWhite`, `DropBlack` (White is the
//! `A` side's avatar). The emulation wraps a full network algorithm into a
//! [`minobs_core::engine::TwoProcessProtocol`]: White steps every node of
//! side `A` locally (intra-side messages are never lost under `Γ_C`),
//! bundles the cut-crossing messages into one two-process message, and
//! unbundles its peer's. A run of the emulation under a `Γ`-scenario `w`
//! is letter-for-letter the run of the network algorithm under the cut
//! adversary driven by `ρ⁻¹(w)` — the equivalence the tests check.

use minobs_core::engine::TwoProcessProtocol;
use minobs_core::letter::{GammaLetter, Letter, Role};
use minobs_graphs::{CutPartition, Graph};
use minobs_sim::network::NodeProtocol;
use std::collections::HashMap;

/// `ρ`: a `Γ_C` letter (encoded as the two-process letter driving
/// [`minobs_sim::adversary::CutAdversary`]) to the two-process letter.
///
/// In this library the encoding *is* the bijection — `ρ` is the identity
/// on letters, made explicit for readability in proofs and tests.
pub fn rho(letter: Letter) -> Option<GammaLetter> {
    letter.to_gamma()
}

/// `ρ⁻¹`: the two-process letter whose cut interpretation a
/// [`minobs_sim::adversary::CutAdversary`] executes.
pub fn rho_inverse(letter: GammaLetter) -> Letter {
    letter.to_letter()
}

/// One side of the emulation: a [`TwoProcessProtocol`] hosting all node
/// protocols of one side of the cut (Algorithm 2 for White / side `A`,
/// Algorithm 3 for Black / side `B`).
///
/// Requirement: the hosted protocols' `send` must be deterministic in
/// their state and the round number (called twice per round).
pub struct EmulatedSide<P: NodeProtocol> {
    role: Role,
    input: bool,
    /// Hosted node protocols, indexed by local id.
    protocols: Vec<P>,
    /// Local id of each hosted original node id.
    local_of: HashMap<usize, usize>,
    /// Original ids in local order.
    original_of: Vec<usize>,
    /// Cut pairs `(own endpoint, remote endpoint)` in cut-index order.
    cut_own_remote: Vec<(usize, usize)>,
    graph: Graph,
    round: usize,
}

/// The bundled cross-cut traffic of one round: `(cut index, payload)`.
pub type CutBundle<M> = Vec<(usize, M)>;

/// Per-local-node inboxes for one emulated round.
type SideInboxes<M> = Vec<Vec<(usize, M)>>;

impl<P: NodeProtocol> EmulatedSide<P> {
    /// Builds the emulation for one side.
    ///
    /// `protocols` must hold one instance per node of the chosen side, in
    /// ascending original-id order (the order of `CutPartition::side_a` /
    /// `side_b`).
    ///
    /// # Panics
    /// Panics when the instance count does not match the side.
    pub fn new(
        role: Role,
        input: bool,
        graph: &Graph,
        partition: &CutPartition,
        protocols: Vec<P>,
    ) -> Self {
        let side = match role {
            Role::White => &partition.side_a,
            Role::Black => &partition.side_b,
        };
        assert_eq!(protocols.len(), side.len(), "one protocol per side node");
        let original_of: Vec<usize> = side.iter().copied().collect();
        let local_of: HashMap<usize, usize> = original_of
            .iter()
            .enumerate()
            .map(|(l, &o)| (o, l))
            .collect();
        let cut_own_remote = partition
            .cut
            .iter()
            .map(|&(a, b)| match role {
                Role::White => (a, b),
                Role::Black => (b, a),
            })
            .collect();
        EmulatedSide {
            role,
            input,
            protocols,
            local_of,
            original_of,
            cut_own_remote,
            graph: graph.clone(),
            round: 0,
        }
    }

    /// Read access to a hosted protocol by original node id.
    pub fn node(&self, original_id: usize) -> Option<&P> {
        self.local_of.get(&original_id).map(|&l| &self.protocols[l])
    }

    /// Decisions of all hosted nodes, in local order.
    pub fn hosted_decisions(&self) -> Vec<Option<u64>> {
        self.protocols.iter().map(|p| p.decision()).collect()
    }

    /// Collects this round's sends from live hosted nodes, split into
    /// intra-side deliveries (local inboxes) and the outgoing cut bundle.
    fn collect_sends(&self) -> (SideInboxes<P::Msg>, CutBundle<P::Msg>) {
        let mut inboxes: SideInboxes<P::Msg> =
            (0..self.protocols.len()).map(|_| Vec::new()).collect();
        let mut bundle: CutBundle<P::Msg> = Vec::new();
        for (local, p) in self.protocols.iter().enumerate() {
            if p.halted() {
                continue;
            }
            let orig_from = self.original_of[local];
            for (to, msg) in p.send(self.round) {
                if !self.graph.has_edge(orig_from, to) {
                    continue; // misaddressed — network engine drops these too
                }
                if let Some(&local_to) = self.local_of.get(&to) {
                    inboxes[local_to].push((orig_from, msg));
                } else if let Some(i) = self
                    .cut_own_remote
                    .iter()
                    .position(|&(own, remote)| own == orig_from && remote == to)
                {
                    bundle.push((i, msg));
                }
                // A cross edge that is not a cut pair cannot exist: the cut
                // contains every edge between the sides.
            }
        }
        (inboxes, bundle)
    }
}

impl<P: NodeProtocol> TwoProcessProtocol for EmulatedSide<P> {
    type Msg = CutBundle<P::Msg>;

    fn role(&self) -> Role {
        self.role
    }

    fn input(&self) -> bool {
        self.input
    }

    fn outgoing(&self) -> Option<CutBundle<P::Msg>> {
        // The bundle is sent every round, even when empty — the paper's
        // Algorithm 2 sends M unconditionally.
        let (_, bundle) = self.collect_sends();
        Some(bundle)
    }

    fn advance(&mut self, incoming: Option<CutBundle<P::Msg>>) {
        let (mut inboxes, _) = self.collect_sends();
        if let Some(bundle) = incoming {
            for (i, msg) in bundle {
                if let Some(&(own, remote)) = self.cut_own_remote.get(i) {
                    if let Some(&local) = self.local_of.get(&own) {
                        inboxes[local].push((remote, msg));
                    }
                }
            }
        }
        for (local, p) in self.protocols.iter_mut().enumerate() {
            if !p.halted() {
                p.advance(self.round, std::mem::take(&mut inboxes[local]));
            }
        }
        self.round += 1;
    }

    fn decision(&self) -> Option<bool> {
        // The emulation decides once every hosted node has decided; by
        // Agreement of the network algorithm they coincide.
        let mut value = None;
        for p in &self.protocols {
            match p.decision() {
                None => return None,
                Some(v) => {
                    if *value.get_or_insert(v) != v {
                        // Hosted disagreement: surface it as White/Black
                        // disagreement by reporting the first value.
                        break;
                    }
                }
            }
        }
        value.map(|v| v != 0)
    }

    fn halted(&self) -> bool {
        self.protocols.iter().all(|p| p.halted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::{DecisionRule, FloodConsensus};
    use minobs_core::engine::run_two_process;
    use minobs_core::scenario::Scenario;
    use minobs_graphs::{cut_partition, generators};
    use minobs_sim::adversary::CutAdversary;
    use minobs_sim::network::{run_network, NetVerdict};

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    fn split_fleet(
        g: &Graph,
        p: &CutPartition,
        white_input: bool,
        black_input: bool,
    ) -> (Vec<FloodConsensus>, Vec<FloodConsensus>, Vec<u64>) {
        let n = g.vertex_count();
        let inputs: Vec<u64> = (0..n)
            .map(|v| {
                if p.side_a.contains(&v) {
                    white_input as u64
                } else {
                    black_input as u64
                }
            })
            .collect();
        let fleet = FloodConsensus::fleet(g, &inputs, DecisionRule::ValueOfMinId);
        let mut side_a = Vec::new();
        let mut side_b = Vec::new();
        for (v, node) in fleet.into_iter().enumerate() {
            if p.side_a.contains(&v) {
                side_a.push(node);
            } else {
                side_b.push(node);
            }
        }
        (side_a, side_b, inputs)
    }

    #[test]
    fn rho_is_a_bijection_on_gamma() {
        for g in GammaLetter::ALL {
            assert_eq!(rho(rho_inverse(g)), Some(g));
        }
        assert_eq!(rho(Letter::DropBoth), None);
    }

    /// The headline equivalence: the emulated two-process run under `w`
    /// matches the network run under the cut adversary driven by
    /// `ρ⁻¹(w)`, decision for decision.
    #[test]
    fn emulation_matches_network_run() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let scenarios = ["(-)", "(w)", "(b)", "(wb)", "w-(b)", "bw(-)"];
        for s in scenarios {
            for (wi, bi) in [(false, false), (false, true), (true, false), (true, true)] {
                // Network run.
                let (_, _, inputs) = split_fleet(&g, &p, wi, bi);
                let fleet = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
                let mut adv = CutAdversary::new(&p, sc(s));
                let net_out = run_network(&g, fleet, &mut adv, 32);

                // Emulated run.
                let (side_a, side_b, _) = split_fleet(&g, &p, wi, bi);
                let mut white = EmulatedSide::new(Role::White, wi, &g, &p, side_a);
                let mut black = EmulatedSide::new(Role::Black, bi, &g, &p, side_b);
                let two_out = run_two_process(&mut white, &mut black, &sc(s), 32);

                // Per-node decisions coincide.
                let mut emu_decisions = vec![None; g.vertex_count()];
                for &v in &p.side_a {
                    emu_decisions[v] = white.node(v).unwrap().decision();
                }
                for &v in &p.side_b {
                    emu_decisions[v] = black.node(v).unwrap().decision();
                }
                assert_eq!(
                    net_out.decisions, emu_decisions,
                    "scenario {s} inputs ({wi},{bi})"
                );
                // Engine verdicts tell the same story.
                assert_eq!(
                    net_out.verdict.is_consensus(),
                    two_out.verdict.is_consensus(),
                    "scenario {s} inputs ({wi},{bi}): {:?} vs {:?}",
                    net_out.verdict,
                    two_out.verdict
                );
            }
        }
    }

    #[test]
    fn emulation_consensus_under_fault_free() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let (side_a, side_b, _) = split_fleet(&g, &p, true, false);
        let mut white = EmulatedSide::new(Role::White, true, &g, &p, side_a);
        let mut black = EmulatedSide::new(Role::Black, false, &g, &p, side_b);
        let out = run_two_process(&mut white, &mut black, &sc("(-)"), 32);
        assert!(out.verdict.is_consensus(), "{:?}", out.verdict);
    }

    #[test]
    fn network_disagrees_exactly_when_two_process_does() {
        // Under the always-drop-A→B scenario the network floods fail; the
        // emulation mirrors that as a two-process disagreement/undecided.
        // Inputs are split along the *actual* discovered partition (for a
        // small barbell the minimum cut may isolate a degree-2 clique
        // vertex rather than cutting the bridges).
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let (_, _, inputs) = split_fleet(&g, &p, false, true);
        let fleet = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
        let mut adv = CutAdversary::new(&p, sc("(w)"));
        let out = run_network(&g, fleet, &mut adv, 32);
        assert!(
            matches!(out.verdict, NetVerdict::Disagreement { .. }),
            "verdict: {:?}, decisions: {:?}",
            out.verdict,
            out.decisions
        );

        let (side_a, side_b, _) = split_fleet(&g, &p, false, true);
        let mut white = EmulatedSide::new(Role::White, false, &g, &p, side_a);
        let mut black = EmulatedSide::new(Role::Black, true, &g, &p, side_b);
        let two = run_two_process(&mut white, &mut black, &sc("(w)"), 32);
        assert!(!two.verdict.is_consensus());
    }

    #[test]
    fn singleton_side_emulation() {
        // A star's min cut isolates one leaf: one side hosts a single node.
        let g = generators::star(4);
        let p = cut_partition(&g).unwrap();
        let (side_a, side_b, _) = split_fleet(&g, &p, true, true);
        let mut white = EmulatedSide::new(Role::White, true, &g, &p, side_a);
        let mut black = EmulatedSide::new(Role::Black, true, &g, &p, side_b);
        let out = run_two_process(&mut white, &mut black, &sc("(-)"), 16);
        assert!(out.verdict.is_consensus());
    }
}
