//! The `minobs/bench/v1` artifact schema: recorded perf trajectories.
//!
//! Every benchmark run — the `svc bench` open- and closed-loop drivers,
//! the frequency sweep, and the `bench_checker` baseline — emits one
//! JSON object under this schema so the repo carries a comparable perf
//! trajectory (`BENCH_svc.json`, `BENCH_checker.json` at the repo root)
//! and CI can gate on regressions with `perf_gate`.
//!
//! Required fields:
//!
//! | field | type | meaning |
//! |-------|------|---------|
//! | `schema` | string | exactly [`BENCH_SCHEMA`] |
//! | `id` | string | artifact identity, e.g. `bench_svc` |
//! | `kind` | string | `svc_open_loop`, `svc_open_loop_sweep`, `svc_closed_loop`, or `checker` |
//! | `meta` | object | provenance: `timestamp`, `rustc`, `threads` (host block from `minobs-bench`) |
//! | `achieved_qps` | number | completed requests per second of wall clock |
//! | `latency_ns` | object | `count`, `p50`, `p95`, `p99`, `max` — monotone `p50 ≤ p95 ≤ p99 ≤ max` |
//!
//! Optional fields with validated invariants:
//!
//! * `offered_qps` — required for the `svc_open_loop*` kinds; when
//!   present, `achieved_qps ≤ offered_qps` must hold (an open-loop
//!   driver can fall behind its schedule but never complete more work
//!   than it offered).
//! * `sent`, `completed`, `errors`, `dropped_by_cap` — counters;
//!   `completed ≤ sent` when both are present.
//! * `sweep` — an array of trial objects, each holding `offered_qps`,
//!   `achieved_qps`, and `latency_ns` under the same invariants.
//! * `knee` — `null` or an object with `offered_qps`: the first sweep
//!   point where the service saturated.
//!
//! `trace_lint` applies [`validate_bench_artifact`] whenever it is
//! handed a file that parses as a single JSON object under this schema.

use serde_json::Value;

/// Version tag carried by every bench artifact.
pub const BENCH_SCHEMA: &str = "minobs/bench/v1";

/// Relative headroom allowed on `achieved ≤ offered`: both sides are
/// computed from independent clock reads, so exact equality can wobble
/// by a rounding ulp without meaning the driver overshot its schedule.
const RATE_TOLERANCE: f64 = 1e-9;

fn field<'a>(value: &'a Value, key: &str, context: &str) -> Result<&'a Value, String> {
    value
        .get(key)
        .ok_or_else(|| format!("{context}: missing field {key:?}"))
}

fn field_str<'a>(value: &'a Value, key: &str, context: &str) -> Result<&'a str, String> {
    field(value, key, context)?
        .as_str()
        .ok_or_else(|| format!("{context}: field {key:?} must be a string"))
}

fn field_num(value: &Value, key: &str, context: &str) -> Result<f64, String> {
    let number = field(value, key, context)?
        .as_f64()
        .ok_or_else(|| format!("{context}: field {key:?} must be a number"))?;
    if !number.is_finite() || number < 0.0 {
        return Err(format!(
            "{context}: field {key:?} must be finite and non-negative, got {number}"
        ));
    }
    Ok(number)
}

fn optional_num(value: &Value, key: &str, context: &str) -> Result<Option<f64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(_) => field_num(value, key, context).map(Some),
    }
}

/// Checks one latency summary block: `count`, `p50`, `p95`, `p99`, `max`
/// all present, numeric, and monotone `p50 ≤ p95 ≤ p99 ≤ max`.
fn validate_latency(value: &Value, context: &str) -> Result<(), String> {
    let latency = field(value, "latency_ns", context)?;
    if latency.as_object().is_none() {
        return Err(format!("{context}: \"latency_ns\" must be an object"));
    }
    let context = format!("{context}.latency_ns");
    field_num(latency, "count", &context)?;
    let p50 = field_num(latency, "p50", &context)?;
    let p95 = field_num(latency, "p95", &context)?;
    let p99 = field_num(latency, "p99", &context)?;
    let max = field_num(latency, "max", &context)?;
    if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
        return Err(format!(
            "{context}: quantiles not monotone: p50 {p50} ≤ p95 {p95} ≤ p99 {p99} ≤ max {max} must hold"
        ));
    }
    Ok(())
}

/// Checks the rate and counter invariants shared by the artifact root
/// and every sweep trial.
fn validate_rates(value: &Value, context: &str, offered_required: bool) -> Result<(), String> {
    let achieved = field_num(value, "achieved_qps", context)?;
    let offered = optional_num(value, "offered_qps", context)?;
    if offered_required && offered.is_none() {
        return Err(format!(
            "{context}: open-loop artifacts must record \"offered_qps\""
        ));
    }
    if let Some(offered) = offered {
        if achieved > offered * (1.0 + RATE_TOLERANCE) {
            return Err(format!(
                "{context}: achieved_qps {achieved} exceeds offered_qps {offered}"
            ));
        }
    }
    let sent = optional_num(value, "sent", context)?;
    let completed = optional_num(value, "completed", context)?;
    if let (Some(sent), Some(completed)) = (sent, completed) {
        if completed > sent {
            return Err(format!(
                "{context}: completed {completed} exceeds sent {sent}"
            ));
        }
    }
    Ok(())
}

/// Validates one `minobs/bench/v1` artifact, returning the first
/// violation as a human-readable message.
pub fn validate_bench_artifact(artifact: &Value) -> Result<(), String> {
    if artifact.as_object().is_none() {
        return Err("bench artifact must be a JSON object".to_string());
    }
    let schema = field_str(artifact, "schema", "artifact")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "artifact: schema {schema:?}, expected {BENCH_SCHEMA:?}"
        ));
    }
    let id = field_str(artifact, "id", "artifact")?;
    if id.is_empty() {
        return Err("artifact: \"id\" must be non-empty".to_string());
    }
    let kind = field_str(artifact, "kind", "artifact")?;
    let open_loop = kind.starts_with("svc_open_loop");

    let meta = field(artifact, "meta", "artifact")?;
    if meta.as_object().is_none() {
        return Err("artifact: \"meta\" must be an object".to_string());
    }
    for key in ["timestamp", "rustc", "threads"] {
        if meta.get(key).is_none() {
            return Err(format!("artifact.meta: missing field {key:?}"));
        }
    }

    validate_rates(artifact, "artifact", open_loop)?;
    validate_latency(artifact, "artifact")?;

    match artifact.get("sweep") {
        None | Some(Value::Null) => {}
        Some(Value::Array(trials)) => {
            if trials.is_empty() {
                return Err("artifact: \"sweep\" must not be empty".to_string());
            }
            for (index, trial) in trials.iter().enumerate() {
                let context = format!("sweep[{index}]");
                if trial.as_object().is_none() {
                    return Err(format!("{context}: must be an object"));
                }
                validate_rates(trial, &context, true)?;
                validate_latency(trial, &context)?;
            }
        }
        Some(_) => return Err("artifact: \"sweep\" must be an array".to_string()),
    }

    match artifact.get("knee") {
        None | Some(Value::Null) => {}
        Some(knee) if knee.as_object().is_some() => {
            field_num(knee, "offered_qps", "knee")?;
        }
        Some(_) => return Err("artifact: \"knee\" must be null or an object".to_string()),
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::{Map, Value};

    fn latency(p50: u64, p95: u64, p99: u64, max: u64) -> Value {
        let mut map = Map::new();
        map.insert("count", Value::from(100u64));
        map.insert("p50", Value::from(p50));
        map.insert("p95", Value::from(p95));
        map.insert("p99", Value::from(p99));
        map.insert("max", Value::from(max));
        Value::Object(map)
    }

    fn meta() -> Value {
        let mut map = Map::new();
        map.insert("timestamp", Value::from("2026-08-07T00:00:00Z"));
        map.insert("rustc", Value::from("rustc 1.95.0"));
        map.insert("threads", Value::from(4u64));
        Value::Object(map)
    }

    fn minimal() -> Map {
        let mut map = Map::new();
        map.insert("schema", Value::from(BENCH_SCHEMA));
        map.insert("id", Value::from("bench_svc"));
        map.insert("kind", Value::from("svc_open_loop"));
        map.insert("meta", meta());
        map.insert("offered_qps", Value::from(500.0));
        map.insert("achieved_qps", Value::from(480.0));
        map.insert("sent", Value::from(2400u64));
        map.insert("completed", Value::from(2350u64));
        map.insert("latency_ns", latency(1_000, 5_000, 9_000, 20_000));
        map
    }

    #[test]
    fn accepts_a_minimal_open_loop_artifact() {
        validate_bench_artifact(&Value::Object(minimal())).unwrap();
    }

    #[test]
    fn rejects_wrong_schema_and_missing_fields() {
        let mut map = minimal();
        map.insert("schema", Value::from("minobs/bench/v0"));
        assert!(validate_bench_artifact(&Value::Object(map))
            .unwrap_err()
            .contains("schema"));

        let mut map = minimal();
        map.remove("latency_ns");
        assert!(validate_bench_artifact(&Value::Object(map))
            .unwrap_err()
            .contains("latency_ns"));

        let mut map = minimal();
        map.remove("meta");
        assert!(validate_bench_artifact(&Value::Object(map))
            .unwrap_err()
            .contains("meta"));
    }

    #[test]
    fn rejects_non_monotone_quantiles() {
        let mut map = minimal();
        map.insert("latency_ns", latency(9_000, 5_000, 10_000, 20_000));
        let err = validate_bench_artifact(&Value::Object(map)).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn rejects_achieved_above_offered() {
        let mut map = minimal();
        map.insert("achieved_qps", Value::from(501.0));
        let err = validate_bench_artifact(&Value::Object(map)).unwrap_err();
        assert!(err.contains("exceeds offered"), "{err}");
    }

    #[test]
    fn open_loop_requires_offered_but_checker_does_not() {
        let mut map = minimal();
        map.remove("offered_qps");
        assert!(validate_bench_artifact(&Value::Object(map.clone()))
            .unwrap_err()
            .contains("offered_qps"));
        map.insert("kind", Value::from("checker"));
        validate_bench_artifact(&Value::Object(map)).unwrap();
    }

    #[test]
    fn rejects_completed_above_sent() {
        let mut map = minimal();
        map.insert("completed", Value::from(9_999u64));
        let err = validate_bench_artifact(&Value::Object(map)).unwrap_err();
        assert!(err.contains("completed"), "{err}");
    }

    #[test]
    fn validates_sweep_trials_and_knee() {
        let mut trial = Map::new();
        trial.insert("offered_qps", Value::from(100.0));
        trial.insert("achieved_qps", Value::from(100.0));
        trial.insert("latency_ns", latency(1, 2, 3, 4));
        let mut map = minimal();
        map.insert("kind", Value::from("svc_open_loop_sweep"));
        map.insert("sweep", Value::Array(vec![Value::Object(trial.clone())]));
        let mut knee = Map::new();
        knee.insert("offered_qps", Value::from(100.0));
        map.insert("knee", Value::Object(knee));
        validate_bench_artifact(&Value::Object(map.clone())).unwrap();

        // A saturated trial must still report achieved ≤ offered.
        trial.insert("achieved_qps", Value::from(150.0));
        map.insert("sweep", Value::Array(vec![Value::Object(trial)]));
        let err = validate_bench_artifact(&Value::Object(map)).unwrap_err();
        assert!(err.contains("sweep[0]"), "{err}");
    }

    #[test]
    fn knee_may_be_null() {
        let mut map = minimal();
        map.insert("knee", Value::Null);
        validate_bench_artifact(&Value::Object(map)).unwrap();
    }
}
