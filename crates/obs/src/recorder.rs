//! The [`Recorder`] trait and its built-in implementations.
//!
//! Engines thread a `&mut R where R: Recorder + ?Sized` through their run
//! loops and call the hook matching each observation. Every hook has a
//! no-op default body, so [`NullRecorder`] — the default on every public
//! entry point — monomorphises to nothing and the uninstrumented hot path
//! stays byte-for-byte as fast as before instrumentation (proven by the
//! `bench_obs` criterion benchmark).
//!
//! Hooks that would require extra per-round work to *feed* (scanning for
//! fresh decisions, timing rounds, buffering per-message fates) are gated
//! by [`Recorder::enabled`], which the null recorder answers `false` —
//! engines skip building those observations entirely.

use crate::event::{MessageStatus, RoundCounts, TraceEvent};

/// Receives structured observations from an engine or the model checker.
///
/// All hooks default to no-ops; implementors override the ones they care
/// about. The event-level hooks mirror the [`TraceEvent`] variants
/// one-to-one, and [`Recorder::record`] is the funnel every default hook
/// forwards to — a sink that just wants the full stream (like
/// [`crate::JsonlSink`]) only overrides `record`.
pub trait Recorder {
    /// Cheap global switch. When `false`, engines skip constructing
    /// observations altogether (no timing syscalls, no decision scans).
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Funnel receiving every event the default hooks forward.
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        let _ = event;
    }

    /// A run began.
    #[inline]
    fn on_run_start(&mut self, engine: &'static str, nodes: usize, threads: usize) {
        self.record(TraceEvent::RunStart {
            engine,
            nodes,
            threads,
        });
    }

    /// A message was delivered, dropped, or misaddressed in `round`.
    #[inline]
    fn on_message(&mut self, round: usize, from: usize, to: usize, status: MessageStatus) {
        self.record(TraceEvent::Message {
            round,
            from,
            to,
            status,
        });
    }

    /// A node committed to `value` in `round`.
    #[inline]
    fn on_decision(&mut self, round: usize, node: usize, value: u64) {
        self.record(TraceEvent::Decision { round, node, value });
    }

    /// A round finished with the given accounting.
    #[inline]
    fn on_round_end(&mut self, round: usize, counts: RoundCounts, nanos: u64) {
        self.record(TraceEvent::RoundEnd {
            round,
            counts,
            nanos,
        });
    }

    /// A named timed section completed.
    #[inline]
    fn on_span(&mut self, round: usize, name: &str, nanos: u64) {
        self.record(TraceEvent::Span {
            round,
            name: name.to_string(),
            nanos,
        });
    }

    /// A profiling span opened (see [`crate::SpanGuard`]).
    ///
    /// The hook carries no distributed-trace fields: a span is born local
    /// and only gains `trace_id`/`ctx_parent` when the owner stamps the
    /// buffered event (see [`crate::stamp_root_span`]).
    #[inline]
    fn on_span_start(&mut self, round: usize, span_id: u64, parent: Option<u64>, name: &str) {
        self.record(TraceEvent::SpanStart {
            round,
            span_id,
            parent,
            name: name.to_string(),
            trace_id: None,
            ctx_parent: None,
        });
    }

    /// A profiling span closed with its measured duration.
    #[inline]
    fn on_span_end(&mut self, round: usize, span_id: u64, name: &str, nanos: u64) {
        self.record(TraceEvent::SpanEnd {
            round,
            span_id,
            name: name.to_string(),
            nanos,
        });
    }

    /// Heartbeat from a long checker sweep: cumulative states crossed
    /// another progress stride.
    #[inline]
    fn on_checker_progress(&mut self, round: usize, frontier: usize, states: usize) {
        self.record(TraceEvent::CheckerProgress {
            round,
            frontier,
            states,
        });
    }

    /// The model checker finished one frontier step.
    #[inline]
    fn on_checker_round(&mut self, round: usize, frontier: usize, views: usize, nanos: u64) {
        self.record(TraceEvent::CheckerRound {
            round,
            frontier,
            views,
            nanos,
        });
    }

    /// A whole horizon check finished.
    #[inline]
    fn on_horizon(&mut self, horizon: usize, solvable: bool, nanos: u64) {
        self.record(TraceEvent::Horizon {
            horizon,
            solvable,
            nanos,
        });
    }

    /// A parallel engine worker panicked; its shard was recovered serially.
    #[inline]
    fn on_engine_degraded(&mut self, round: usize, phase: &'static str, shard: usize) {
        self.record(TraceEvent::EngineDegraded {
            round,
            phase,
            shard,
        });
    }

    /// The model checker's state or time budget ran out mid-check.
    #[inline]
    fn on_budget_exhausted(&mut self, horizon: usize, frontier: usize, states: usize) {
        self.record(TraceEvent::BudgetExhausted {
            horizon,
            frontier,
            states,
        });
    }

    /// A run finished with totals over all rounds.
    #[inline]
    fn on_run_end(&mut self, rounds: usize, totals: RoundCounts, nanos: u64) {
        self.record(TraceEvent::RunEnd {
            rounds,
            totals,
            nanos,
        });
    }

    /// The solvability service accepted request `seq` for `method`.
    #[inline]
    fn on_svc_request(&mut self, seq: u64, method: &str) {
        self.record(TraceEvent::SvcRequest {
            seq,
            method: method.to_string(),
        });
    }

    /// The solvability service answered request `seq`.
    #[inline]
    fn on_svc_response(&mut self, seq: u64, method: &str, ok: bool, cache: &'static str, nanos: u64) {
        self.record(TraceEvent::SvcResponse {
            seq,
            method: method.to_string(),
            ok,
            cache,
            nanos,
        });
    }

    /// The daemon appended a record to the write-ahead verdict log.
    #[inline]
    fn on_wal_append(&mut self, op: &'static str, key: &str, bytes: u64) {
        self.record(TraceEvent::WalAppend {
            op,
            key: key.to_string(),
            bytes,
        });
    }

    /// The daemon replayed the write-ahead verdict log at startup.
    #[inline]
    fn on_wal_replay(&mut self, records: u64, bytes: u64, dropped_tail: bool) {
        self.record(TraceEvent::WalReplay {
            records,
            bytes,
            dropped_tail,
        });
    }

    /// The write-ahead log failed; the daemon is memory-only from here.
    #[inline]
    fn on_wal_degraded(&mut self, error: &str) {
        self.record(TraceEvent::WalDegraded {
            error: error.to_string(),
        });
    }

    /// One anti-entropy gossip exchange with `peer` finished.
    #[inline]
    fn on_gossip_round(&mut self, peer: &str, sent: u64, received: u64, nanos: u64) {
        self.record(TraceEvent::GossipRound {
            peer: peer.to_string(),
            sent,
            received,
            nanos,
        });
    }

    /// One replicated delta from `peer` was ingested (or rejected).
    #[inline]
    fn on_gossip_apply(&mut self, peer: &str, op: &'static str, key: &str, accepted: bool) {
        self.record(TraceEvent::GossipApply {
            peer: peer.to_string(),
            op,
            key: key.to_string(),
            accepted,
        });
    }

    /// A peer stopped answering gossip and was marked down.
    #[inline]
    fn on_peer_down(&mut self, peer: &str, failures: u64) {
        self.record(TraceEvent::PeerDown {
            peer: peer.to_string(),
            failures,
        });
    }

    /// The daemon's health verdict flipped (edge-triggered).
    #[inline]
    fn on_health(&mut self, status: &str, ready: bool, live: bool) {
        self.record(TraceEvent::Health {
            status: status.to_string(),
            ready,
            live,
        });
    }
}

/// A `&mut` reference forwards to the referent, overridden hooks included,
/// so call sites can tee short-lived borrows of long-lived recorders.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        (**self).record(event);
    }
    #[inline]
    fn on_run_start(&mut self, engine: &'static str, nodes: usize, threads: usize) {
        (**self).on_run_start(engine, nodes, threads);
    }
    #[inline]
    fn on_message(&mut self, round: usize, from: usize, to: usize, status: MessageStatus) {
        (**self).on_message(round, from, to, status);
    }
    #[inline]
    fn on_decision(&mut self, round: usize, node: usize, value: u64) {
        (**self).on_decision(round, node, value);
    }
    #[inline]
    fn on_round_end(&mut self, round: usize, counts: RoundCounts, nanos: u64) {
        (**self).on_round_end(round, counts, nanos);
    }
    #[inline]
    fn on_span(&mut self, round: usize, name: &str, nanos: u64) {
        (**self).on_span(round, name, nanos);
    }
    #[inline]
    fn on_span_start(&mut self, round: usize, span_id: u64, parent: Option<u64>, name: &str) {
        (**self).on_span_start(round, span_id, parent, name);
    }
    #[inline]
    fn on_span_end(&mut self, round: usize, span_id: u64, name: &str, nanos: u64) {
        (**self).on_span_end(round, span_id, name, nanos);
    }
    #[inline]
    fn on_checker_progress(&mut self, round: usize, frontier: usize, states: usize) {
        (**self).on_checker_progress(round, frontier, states);
    }
    #[inline]
    fn on_checker_round(&mut self, round: usize, frontier: usize, views: usize, nanos: u64) {
        (**self).on_checker_round(round, frontier, views, nanos);
    }
    #[inline]
    fn on_horizon(&mut self, horizon: usize, solvable: bool, nanos: u64) {
        (**self).on_horizon(horizon, solvable, nanos);
    }
    #[inline]
    fn on_engine_degraded(&mut self, round: usize, phase: &'static str, shard: usize) {
        (**self).on_engine_degraded(round, phase, shard);
    }
    #[inline]
    fn on_budget_exhausted(&mut self, horizon: usize, frontier: usize, states: usize) {
        (**self).on_budget_exhausted(horizon, frontier, states);
    }
    #[inline]
    fn on_run_end(&mut self, rounds: usize, totals: RoundCounts, nanos: u64) {
        (**self).on_run_end(rounds, totals, nanos);
    }
    #[inline]
    fn on_svc_request(&mut self, seq: u64, method: &str) {
        (**self).on_svc_request(seq, method);
    }
    #[inline]
    fn on_svc_response(&mut self, seq: u64, method: &str, ok: bool, cache: &'static str, nanos: u64) {
        (**self).on_svc_response(seq, method, ok, cache, nanos);
    }
    #[inline]
    fn on_wal_append(&mut self, op: &'static str, key: &str, bytes: u64) {
        (**self).on_wal_append(op, key, bytes);
    }
    #[inline]
    fn on_wal_replay(&mut self, records: u64, bytes: u64, dropped_tail: bool) {
        (**self).on_wal_replay(records, bytes, dropped_tail);
    }
    #[inline]
    fn on_wal_degraded(&mut self, error: &str) {
        (**self).on_wal_degraded(error);
    }
    #[inline]
    fn on_gossip_round(&mut self, peer: &str, sent: u64, received: u64, nanos: u64) {
        (**self).on_gossip_round(peer, sent, received, nanos);
    }
    #[inline]
    fn on_gossip_apply(&mut self, peer: &str, op: &'static str, key: &str, accepted: bool) {
        (**self).on_gossip_apply(peer, op, key, accepted);
    }
    #[inline]
    fn on_peer_down(&mut self, peer: &str, failures: u64) {
        (**self).on_peer_down(peer, failures);
    }
    #[inline]
    fn on_health(&mut self, status: &str, ready: bool, live: bool) {
        (**self).on_health(status, ready, live);
    }
}

/// Re-dispatches a stored [`TraceEvent`] through the matching hook.
///
/// `recorder.record(event)` bypasses overridden hooks (a
/// [`crate::MetricsRecorder`] aggregates in hooks and ignores `record`),
/// so replaying a buffered stream — the daemon flushing per-request span
/// blocks, tests rebuilding metrics from canonical events — goes through
/// here instead.
pub fn replay_event<R: Recorder + ?Sized>(recorder: &mut R, event: &TraceEvent) {
    match event {
        TraceEvent::RunStart {
            engine,
            nodes,
            threads,
        } => recorder.on_run_start(engine, *nodes, *threads),
        TraceEvent::Message {
            round,
            from,
            to,
            status,
        } => recorder.on_message(*round, *from, *to, *status),
        TraceEvent::Decision { round, node, value } => {
            recorder.on_decision(*round, *node, *value)
        }
        TraceEvent::RoundEnd {
            round,
            counts,
            nanos,
        } => recorder.on_round_end(*round, *counts, *nanos),
        TraceEvent::Span { round, name, nanos } => recorder.on_span(*round, name, *nanos),
        // The ctx fields don't travel through the hook: replay feeds
        // aggregators (metrics), which ignore trace identity; sinks that
        // need the stamped fields receive the full event via `record`.
        TraceEvent::SpanStart {
            round,
            span_id,
            parent,
            name,
            ..
        } => recorder.on_span_start(*round, *span_id, *parent, name),
        TraceEvent::SpanEnd {
            round,
            span_id,
            name,
            nanos,
        } => recorder.on_span_end(*round, *span_id, name, *nanos),
        TraceEvent::CheckerProgress {
            round,
            frontier,
            states,
        } => recorder.on_checker_progress(*round, *frontier, *states),
        TraceEvent::CheckerRound {
            round,
            frontier,
            views,
            nanos,
        } => recorder.on_checker_round(*round, *frontier, *views, *nanos),
        TraceEvent::Horizon {
            horizon,
            solvable,
            nanos,
        } => recorder.on_horizon(*horizon, *solvable, *nanos),
        TraceEvent::EngineDegraded {
            round,
            phase,
            shard,
        } => recorder.on_engine_degraded(*round, phase, *shard),
        TraceEvent::BudgetExhausted {
            horizon,
            frontier,
            states,
        } => recorder.on_budget_exhausted(*horizon, *frontier, *states),
        TraceEvent::RunEnd {
            rounds,
            totals,
            nanos,
        } => recorder.on_run_end(*rounds, *totals, *nanos),
        TraceEvent::SvcRequest { seq, method } => recorder.on_svc_request(*seq, method),
        TraceEvent::SvcResponse {
            seq,
            method,
            ok,
            cache,
            nanos,
        } => recorder.on_svc_response(*seq, method, *ok, cache, *nanos),
        TraceEvent::WalAppend { op, key, bytes } => recorder.on_wal_append(op, key, *bytes),
        TraceEvent::WalReplay {
            records,
            bytes,
            dropped_tail,
        } => recorder.on_wal_replay(*records, *bytes, *dropped_tail),
        TraceEvent::WalDegraded { error } => recorder.on_wal_degraded(error),
        TraceEvent::GossipRound {
            peer,
            sent,
            received,
            nanos,
        } => recorder.on_gossip_round(peer, *sent, *received, *nanos),
        TraceEvent::GossipApply {
            peer,
            op,
            key,
            accepted,
        } => recorder.on_gossip_apply(peer, op, key, *accepted),
        TraceEvent::PeerDown { peer, failures } => recorder.on_peer_down(peer, *failures),
        TraceEvent::Health {
            status,
            ready,
            live,
        } => recorder.on_health(status, *ready, *live),
        // Flight-recorder bookkeeping has no dedicated hook: these events
        // annotate a stream rather than observe the system, so replay
        // funnels them straight through `record` and aggregators that
        // only override hooks ignore them.
        TraceEvent::FlightDump { .. } | TraceEvent::TraceSampled { .. } => {
            recorder.record(event.clone())
        }
    }
}

/// The do-nothing recorder: the default on every public entry point.
///
/// `enabled()` is `false`, so engines skip observation construction, and
/// every hook body is an inlined empty function — the optimiser removes
/// the instrumentation entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Buffers every event in memory, in arrival order.
///
/// Used by equivalence tests to compare the serial and parallel engines'
/// event streams, and handy for ad-hoc assertions about instrumented code.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Vec<TraceEvent>,
}

impl MemoryRecorder {
    /// An empty buffer.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// The buffered events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, yielding the buffer.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Events in a stream-order-independent form: message and decision
    /// events sorted by `(round, from/node, to)`, other events left in
    /// relative order. Two engines that make the same observations in a
    /// different per-round order canonicalise to equal streams.
    pub fn canonical_events(&self) -> Vec<TraceEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|event| match *event {
            TraceEvent::Message {
                round, from, to, ..
            } => (round, 1, from, to),
            TraceEvent::Decision { round, node, .. } => (round, 2, node, 0),
            TraceEvent::RoundEnd { round, .. } => (round, 3, 0, 0),
            TraceEvent::RunStart { .. } => (0, 0, 0, 0),
            TraceEvent::Span { round, .. } => (round, 4, 0, 0),
            // Start sorts before the end of the same span; ids allocated in
            // emission order keep distinct spans properly bracketed.
            TraceEvent::SpanStart { round, span_id, .. } => (round, 4, span_id as usize, 1),
            TraceEvent::SpanEnd { round, span_id, .. } => (round, 4, span_id as usize, 2),
            TraceEvent::CheckerProgress { round, .. } => (round, 5, 0, 0),
            TraceEvent::CheckerRound { round, .. } => (round, 5, 0, 1),
            TraceEvent::Horizon { horizon, .. } => (horizon, 6, 0, 0),
            TraceEvent::EngineDegraded { round, shard, .. } => (round, 8, shard, 0),
            TraceEvent::BudgetExhausted { horizon, .. } => (horizon, 9, 0, 0),
            TraceEvent::RunEnd { rounds, .. } => (rounds, 7, 0, 0),
            TraceEvent::SvcRequest { seq, .. } => (0, 10, seq as usize, 0),
            TraceEvent::SvcResponse { seq, .. } => (0, 10, seq as usize, 1),
            // WAL events keep emission order: appends are sequenced by
            // the log itself, replay/degraded are singular lifecycle marks.
            TraceEvent::WalAppend { .. }
            | TraceEvent::WalReplay { .. }
            | TraceEvent::WalDegraded { .. } => (0, 11, 0, 0),
            // Gossip events likewise keep emission order: exchanges are
            // sequenced by the gossip loop itself.
            TraceEvent::GossipRound { .. }
            | TraceEvent::GossipApply { .. }
            | TraceEvent::PeerDown { .. } => (0, 12, 0, 0),
            // Health flips keep emission order: they are edge-triggered
            // lifecycle marks like the WAL ones.
            TraceEvent::Health { .. } => (0, 13, 0, 0),
            // Flight-recorder marks are stream annotations in emission
            // order: a dump header precedes its events, a sampling mark
            // opens its stream.
            TraceEvent::FlightDump { .. } => (0, 14, 0, 0),
            TraceEvent::TraceSampled { .. } => (0, 15, 0, 0),
        });
        events
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Forwards every event to two recorders, e.g. a [`crate::JsonlSink`] plus
/// a [`crate::MetricsRecorder`].
#[derive(Debug)]
pub struct TeeRecorder<A, B> {
    first: A,
    second: B,
}

impl<A: Recorder, B: Recorder> TeeRecorder<A, B> {
    /// Wraps two recorders.
    pub fn new(first: A, second: B) -> TeeRecorder<A, B> {
        TeeRecorder { first, second }
    }

    /// The wrapped recorders.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

/// Forwards every hook to both recorders — hook-by-hook, not through the
/// `record` funnel, so a side that aggregates in overridden hooks (like
/// [`crate::MetricsRecorder`]) still sees its overrides called.
impl<A: Recorder, B: Recorder> Recorder for TeeRecorder<A, B> {
    #[inline]
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.first.record(event.clone());
        self.second.record(event);
    }
    #[inline]
    fn on_run_start(&mut self, engine: &'static str, nodes: usize, threads: usize) {
        self.first.on_run_start(engine, nodes, threads);
        self.second.on_run_start(engine, nodes, threads);
    }
    #[inline]
    fn on_message(&mut self, round: usize, from: usize, to: usize, status: MessageStatus) {
        self.first.on_message(round, from, to, status);
        self.second.on_message(round, from, to, status);
    }
    #[inline]
    fn on_decision(&mut self, round: usize, node: usize, value: u64) {
        self.first.on_decision(round, node, value);
        self.second.on_decision(round, node, value);
    }
    #[inline]
    fn on_round_end(&mut self, round: usize, counts: RoundCounts, nanos: u64) {
        self.first.on_round_end(round, counts, nanos);
        self.second.on_round_end(round, counts, nanos);
    }
    #[inline]
    fn on_span(&mut self, round: usize, name: &str, nanos: u64) {
        self.first.on_span(round, name, nanos);
        self.second.on_span(round, name, nanos);
    }
    #[inline]
    fn on_span_start(&mut self, round: usize, span_id: u64, parent: Option<u64>, name: &str) {
        self.first.on_span_start(round, span_id, parent, name);
        self.second.on_span_start(round, span_id, parent, name);
    }
    #[inline]
    fn on_span_end(&mut self, round: usize, span_id: u64, name: &str, nanos: u64) {
        self.first.on_span_end(round, span_id, name, nanos);
        self.second.on_span_end(round, span_id, name, nanos);
    }
    #[inline]
    fn on_checker_progress(&mut self, round: usize, frontier: usize, states: usize) {
        self.first.on_checker_progress(round, frontier, states);
        self.second.on_checker_progress(round, frontier, states);
    }
    #[inline]
    fn on_checker_round(&mut self, round: usize, frontier: usize, views: usize, nanos: u64) {
        self.first.on_checker_round(round, frontier, views, nanos);
        self.second.on_checker_round(round, frontier, views, nanos);
    }
    #[inline]
    fn on_horizon(&mut self, horizon: usize, solvable: bool, nanos: u64) {
        self.first.on_horizon(horizon, solvable, nanos);
        self.second.on_horizon(horizon, solvable, nanos);
    }
    #[inline]
    fn on_engine_degraded(&mut self, round: usize, phase: &'static str, shard: usize) {
        self.first.on_engine_degraded(round, phase, shard);
        self.second.on_engine_degraded(round, phase, shard);
    }
    #[inline]
    fn on_budget_exhausted(&mut self, horizon: usize, frontier: usize, states: usize) {
        self.first.on_budget_exhausted(horizon, frontier, states);
        self.second.on_budget_exhausted(horizon, frontier, states);
    }
    #[inline]
    fn on_run_end(&mut self, rounds: usize, totals: RoundCounts, nanos: u64) {
        self.first.on_run_end(rounds, totals, nanos);
        self.second.on_run_end(rounds, totals, nanos);
    }
    #[inline]
    fn on_svc_request(&mut self, seq: u64, method: &str) {
        self.first.on_svc_request(seq, method);
        self.second.on_svc_request(seq, method);
    }
    #[inline]
    fn on_svc_response(&mut self, seq: u64, method: &str, ok: bool, cache: &'static str, nanos: u64) {
        self.first.on_svc_response(seq, method, ok, cache, nanos);
        self.second.on_svc_response(seq, method, ok, cache, nanos);
    }
    fn on_wal_append(&mut self, op: &'static str, key: &str, bytes: u64) {
        self.first.on_wal_append(op, key, bytes);
        self.second.on_wal_append(op, key, bytes);
    }
    fn on_wal_replay(&mut self, records: u64, bytes: u64, dropped_tail: bool) {
        self.first.on_wal_replay(records, bytes, dropped_tail);
        self.second.on_wal_replay(records, bytes, dropped_tail);
    }
    fn on_wal_degraded(&mut self, error: &str) {
        self.first.on_wal_degraded(error);
        self.second.on_wal_degraded(error);
    }
    fn on_gossip_round(&mut self, peer: &str, sent: u64, received: u64, nanos: u64) {
        self.first.on_gossip_round(peer, sent, received, nanos);
        self.second.on_gossip_round(peer, sent, received, nanos);
    }
    fn on_gossip_apply(&mut self, peer: &str, op: &'static str, key: &str, accepted: bool) {
        self.first.on_gossip_apply(peer, op, key, accepted);
        self.second.on_gossip_apply(peer, op, key, accepted);
    }
    fn on_peer_down(&mut self, peer: &str, failures: u64) {
        self.first.on_peer_down(peer, failures);
        self.second.on_peer_down(peer, failures);
    }
    fn on_health(&mut self, status: &str, ready: bool, live: bool) {
        self.first.on_health(status, ready, live);
        self.second.on_health(status, ready, live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        assert!(!NullRecorder.enabled());
    }

    #[test]
    fn hooks_funnel_into_record() {
        let mut memory = MemoryRecorder::new();
        memory.on_run_start("network", 3, 1);
        memory.on_message(0, 0, 1, MessageStatus::Delivered);
        memory.on_decision(1, 2, 9);
        memory.on_run_end(2, RoundCounts::default(), 0);
        let kinds: Vec<&str> = memory.events().iter().map(TraceEvent::kind).collect();
        assert_eq!(kinds, ["run_start", "message", "decision", "run_end"]);
    }

    #[test]
    fn canonical_order_ignores_arrival_order() {
        let mut a = MemoryRecorder::new();
        a.on_message(0, 1, 2, MessageStatus::Delivered);
        a.on_message(0, 0, 1, MessageStatus::Dropped);
        let mut b = MemoryRecorder::new();
        b.on_message(0, 0, 1, MessageStatus::Dropped);
        b.on_message(0, 1, 2, MessageStatus::Delivered);
        assert_ne!(a.events(), b.events());
        assert_eq!(a.canonical_events(), b.canonical_events());
    }

    /// Counts decisions in an overridden hook; `record` stays a no-op, so
    /// only hook-level dispatch reaches it.
    #[derive(Default)]
    struct DecisionCounter {
        decisions: usize,
    }

    impl Recorder for DecisionCounter {
        fn on_decision(&mut self, _round: usize, _node: usize, _value: u64) {
            self.decisions += 1;
        }
    }

    #[test]
    fn replay_event_dispatches_through_overridden_hooks() {
        let mut counter = DecisionCounter::default();
        let event = TraceEvent::Decision {
            round: 1,
            node: 0,
            value: 7,
        };
        // record() would miss the override; replay_event must not.
        counter.record(event.clone());
        assert_eq!(counter.decisions, 0);
        replay_event(&mut counter, &event);
        assert_eq!(counter.decisions, 1);
    }

    #[test]
    fn tee_forwards_overridden_hooks_to_both_sides() {
        let mut counter = DecisionCounter::default();
        let mut memory = MemoryRecorder::new();
        {
            let mut tee = TeeRecorder::new(&mut counter, &mut memory);
            tee.on_decision(0, 1, 2);
        }
        // The aggregating side saw its override; the stream side saw the
        // event. Funnelling through record() would miss the former.
        assert_eq!(counter.decisions, 1);
        assert_eq!(memory.events().len(), 1);
    }

    #[test]
    fn mut_reference_forwards_overridden_hooks() {
        fn drive<R: Recorder>(mut recorder: R) -> R {
            recorder.on_decision(0, 1, 2);
            recorder
        }
        fn enabled_via<R: Recorder>(recorder: R) -> bool {
            recorder.enabled()
        }
        let mut counter = DecisionCounter::default();
        drive(&mut counter);
        assert_eq!(counter.decisions, 1);
        assert!(enabled_via(&mut counter));
    }

    #[test]
    fn canonical_order_brackets_span_pairs() {
        let mut rec = MemoryRecorder::new();
        rec.on_span_start(0, 0, None, "net_send");
        rec.on_span_end(0, 0, "net_send", 10);
        rec.on_span_start(0, 1, None, "net_advance");
        rec.on_span_end(0, 1, "net_advance", 20);
        let kinds: Vec<&str> = rec
            .canonical_events()
            .iter()
            .map(TraceEvent::kind)
            .collect();
        assert_eq!(kinds, ["span_start", "span_end", "span_start", "span_end"]);
    }

    #[test]
    fn gossip_hooks_funnel_and_tee_forwards_them() {
        let mut memory = MemoryRecorder::new();
        memory.on_gossip_round("127.0.0.1:7401", 2, 1, 10);
        memory.on_gossip_apply("127.0.0.1:7401", "horizon", "classic:s1|gamma", true);
        memory.on_peer_down("127.0.0.1:7402", 3);
        let kinds: Vec<&str> = memory.events().iter().map(TraceEvent::kind).collect();
        assert_eq!(kinds, ["gossip_round", "gossip_apply", "peer_down"]);

        /// Counts gossip hook calls in overrides; `record` stays a no-op,
        /// so only explicit hook forwarding reaches it.
        #[derive(Default)]
        struct GossipCounter {
            rounds: usize,
            applies: usize,
            downs: usize,
        }
        impl Recorder for GossipCounter {
            fn on_gossip_round(&mut self, _p: &str, _s: u64, _r: u64, _n: u64) {
                self.rounds += 1;
            }
            fn on_gossip_apply(&mut self, _p: &str, _o: &'static str, _k: &str, _a: bool) {
                self.applies += 1;
            }
            fn on_peer_down(&mut self, _p: &str, _f: u64) {
                self.downs += 1;
            }
        }
        let mut counter = GossipCounter::default();
        {
            let mut tee = TeeRecorder::new(&mut counter, MemoryRecorder::new());
            tee.on_gossip_round("a", 0, 0, 0);
            tee.on_gossip_apply("a", "theorem", "k", false);
            tee.on_peer_down("a", 1);
        }
        assert_eq!(
            (counter.rounds, counter.applies, counter.downs),
            (1, 1, 1)
        );
        // replay_event must dispatch through the overrides too.
        let mut counter = GossipCounter::default();
        for event in memory.events() {
            replay_event(&mut counter, event);
        }
        assert_eq!(
            (counter.rounds, counter.applies, counter.downs),
            (1, 1, 1)
        );
    }

    #[test]
    fn health_hook_funnels_tees_and_replays() {
        let mut memory = MemoryRecorder::new();
        memory.on_health("degraded", false, true);
        assert_eq!(memory.events().iter().map(TraceEvent::kind).collect::<Vec<_>>(), ["health"]);

        /// Counts health flips in an override; `record` stays a no-op.
        #[derive(Default)]
        struct HealthCounter {
            flips: usize,
        }
        impl Recorder for HealthCounter {
            fn on_health(&mut self, _status: &str, _ready: bool, _live: bool) {
                self.flips += 1;
            }
        }
        let mut counter = HealthCounter::default();
        {
            let mut tee = TeeRecorder::new(&mut counter, MemoryRecorder::new());
            tee.on_health("ok", true, true);
        }
        assert_eq!(counter.flips, 1);
        let mut counter = HealthCounter::default();
        for event in memory.events() {
            replay_event(&mut counter, event);
        }
        assert_eq!(counter.flips, 1);
    }

    #[test]
    fn tee_duplicates_the_stream() {
        let mut tee = TeeRecorder::new(MemoryRecorder::new(), MemoryRecorder::new());
        tee.on_decision(4, 0, 1);
        let (first, second) = tee.into_inner();
        assert_eq!(first.events(), second.events());
        assert_eq!(first.events().len(), 1);
    }
}
