//! The [`Recorder`] trait and its built-in implementations.
//!
//! Engines thread a `&mut R where R: Recorder + ?Sized` through their run
//! loops and call the hook matching each observation. Every hook has a
//! no-op default body, so [`NullRecorder`] — the default on every public
//! entry point — monomorphises to nothing and the uninstrumented hot path
//! stays byte-for-byte as fast as before instrumentation (proven by the
//! `bench_obs` criterion benchmark).
//!
//! Hooks that would require extra per-round work to *feed* (scanning for
//! fresh decisions, timing rounds, buffering per-message fates) are gated
//! by [`Recorder::enabled`], which the null recorder answers `false` —
//! engines skip building those observations entirely.

use crate::event::{MessageStatus, RoundCounts, TraceEvent};

/// Receives structured observations from an engine or the model checker.
///
/// All hooks default to no-ops; implementors override the ones they care
/// about. The event-level hooks mirror the [`TraceEvent`] variants
/// one-to-one, and [`Recorder::record`] is the funnel every default hook
/// forwards to — a sink that just wants the full stream (like
/// [`crate::JsonlSink`]) only overrides `record`.
pub trait Recorder {
    /// Cheap global switch. When `false`, engines skip constructing
    /// observations altogether (no timing syscalls, no decision scans).
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Funnel receiving every event the default hooks forward.
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        let _ = event;
    }

    /// A run began.
    #[inline]
    fn on_run_start(&mut self, engine: &'static str, nodes: usize, threads: usize) {
        self.record(TraceEvent::RunStart {
            engine,
            nodes,
            threads,
        });
    }

    /// A message was delivered, dropped, or misaddressed in `round`.
    #[inline]
    fn on_message(&mut self, round: usize, from: usize, to: usize, status: MessageStatus) {
        self.record(TraceEvent::Message {
            round,
            from,
            to,
            status,
        });
    }

    /// A node committed to `value` in `round`.
    #[inline]
    fn on_decision(&mut self, round: usize, node: usize, value: u64) {
        self.record(TraceEvent::Decision { round, node, value });
    }

    /// A round finished with the given accounting.
    #[inline]
    fn on_round_end(&mut self, round: usize, counts: RoundCounts, nanos: u64) {
        self.record(TraceEvent::RoundEnd {
            round,
            counts,
            nanos,
        });
    }

    /// A named timed section completed.
    #[inline]
    fn on_span(&mut self, round: usize, name: &str, nanos: u64) {
        self.record(TraceEvent::Span {
            round,
            name: name.to_string(),
            nanos,
        });
    }

    /// The model checker finished one frontier step.
    #[inline]
    fn on_checker_round(&mut self, round: usize, frontier: usize, views: usize, nanos: u64) {
        self.record(TraceEvent::CheckerRound {
            round,
            frontier,
            views,
            nanos,
        });
    }

    /// A whole horizon check finished.
    #[inline]
    fn on_horizon(&mut self, horizon: usize, solvable: bool, nanos: u64) {
        self.record(TraceEvent::Horizon {
            horizon,
            solvable,
            nanos,
        });
    }

    /// A parallel engine worker panicked; its shard was recovered serially.
    #[inline]
    fn on_engine_degraded(&mut self, round: usize, phase: &'static str, shard: usize) {
        self.record(TraceEvent::EngineDegraded {
            round,
            phase,
            shard,
        });
    }

    /// The model checker's state or time budget ran out mid-check.
    #[inline]
    fn on_budget_exhausted(&mut self, horizon: usize, frontier: usize, states: usize) {
        self.record(TraceEvent::BudgetExhausted {
            horizon,
            frontier,
            states,
        });
    }

    /// A run finished with totals over all rounds.
    #[inline]
    fn on_run_end(&mut self, rounds: usize, totals: RoundCounts, nanos: u64) {
        self.record(TraceEvent::RunEnd {
            rounds,
            totals,
            nanos,
        });
    }

    /// The solvability service accepted request `seq` for `method`.
    #[inline]
    fn on_svc_request(&mut self, seq: u64, method: &str) {
        self.record(TraceEvent::SvcRequest {
            seq,
            method: method.to_string(),
        });
    }

    /// The solvability service answered request `seq`.
    #[inline]
    fn on_svc_response(&mut self, seq: u64, method: &str, ok: bool, cache: &'static str, nanos: u64) {
        self.record(TraceEvent::SvcResponse {
            seq,
            method: method.to_string(),
            ok,
            cache,
            nanos,
        });
    }
}

/// The do-nothing recorder: the default on every public entry point.
///
/// `enabled()` is `false`, so engines skip observation construction, and
/// every hook body is an inlined empty function — the optimiser removes
/// the instrumentation entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Buffers every event in memory, in arrival order.
///
/// Used by equivalence tests to compare the serial and parallel engines'
/// event streams, and handy for ad-hoc assertions about instrumented code.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Vec<TraceEvent>,
}

impl MemoryRecorder {
    /// An empty buffer.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// The buffered events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, yielding the buffer.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Events in a stream-order-independent form: message and decision
    /// events sorted by `(round, from/node, to)`, other events left in
    /// relative order. Two engines that make the same observations in a
    /// different per-round order canonicalise to equal streams.
    pub fn canonical_events(&self) -> Vec<TraceEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|event| match *event {
            TraceEvent::Message {
                round, from, to, ..
            } => (round, 1, from, to),
            TraceEvent::Decision { round, node, .. } => (round, 2, node, 0),
            TraceEvent::RoundEnd { round, .. } => (round, 3, 0, 0),
            TraceEvent::RunStart { .. } => (0, 0, 0, 0),
            TraceEvent::Span { round, .. } => (round, 4, 0, 0),
            TraceEvent::CheckerRound { round, .. } => (round, 5, 0, 0),
            TraceEvent::Horizon { horizon, .. } => (horizon, 6, 0, 0),
            TraceEvent::EngineDegraded { round, shard, .. } => (round, 8, shard, 0),
            TraceEvent::BudgetExhausted { horizon, .. } => (horizon, 9, 0, 0),
            TraceEvent::RunEnd { rounds, .. } => (rounds, 7, 0, 0),
            TraceEvent::SvcRequest { seq, .. } => (0, 10, seq as usize, 0),
            TraceEvent::SvcResponse { seq, .. } => (0, 10, seq as usize, 1),
        });
        events
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Forwards every event to two recorders, e.g. a [`crate::JsonlSink`] plus
/// a [`crate::MetricsRecorder`].
#[derive(Debug)]
pub struct TeeRecorder<A, B> {
    first: A,
    second: B,
}

impl<A: Recorder, B: Recorder> TeeRecorder<A, B> {
    /// Wraps two recorders.
    pub fn new(first: A, second: B) -> TeeRecorder<A, B> {
        TeeRecorder { first, second }
    }

    /// The wrapped recorders.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: Recorder, B: Recorder> Recorder for TeeRecorder<A, B> {
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }

    fn record(&mut self, event: TraceEvent) {
        self.first.record(event.clone());
        self.second.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        assert!(!NullRecorder.enabled());
    }

    #[test]
    fn hooks_funnel_into_record() {
        let mut memory = MemoryRecorder::new();
        memory.on_run_start("network", 3, 1);
        memory.on_message(0, 0, 1, MessageStatus::Delivered);
        memory.on_decision(1, 2, 9);
        memory.on_run_end(2, RoundCounts::default(), 0);
        let kinds: Vec<&str> = memory.events().iter().map(TraceEvent::kind).collect();
        assert_eq!(kinds, ["run_start", "message", "decision", "run_end"]);
    }

    #[test]
    fn canonical_order_ignores_arrival_order() {
        let mut a = MemoryRecorder::new();
        a.on_message(0, 1, 2, MessageStatus::Delivered);
        a.on_message(0, 0, 1, MessageStatus::Dropped);
        let mut b = MemoryRecorder::new();
        b.on_message(0, 0, 1, MessageStatus::Dropped);
        b.on_message(0, 1, 2, MessageStatus::Delivered);
        assert_ne!(a.events(), b.events());
        assert_eq!(a.canonical_events(), b.canonical_events());
    }

    #[test]
    fn tee_duplicates_the_stream() {
        let mut tee = TeeRecorder::new(MemoryRecorder::new(), MemoryRecorder::new());
        tee.on_decision(4, 0, 1);
        let (first, second) = tee.into_inner();
        assert_eq!(first.events(), second.events());
        assert_eq!(first.events().len(), 1);
    }
}
