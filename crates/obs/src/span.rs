//! Cheap profiling spans: [`SpanIds`] allocates stream-unique monotone
//! identifiers and [`SpanGuard`] brackets a timed section with
//! `span_start` / `span_end` events.
//!
//! The guard is gated on [`Recorder::enabled`]: with a disabled recorder
//! [`SpanGuard::begin`] returns `None` after a single bool check — no id
//! is consumed, no `Instant::now` syscall happens, nothing is recorded.
//! That keeps span instrumentation on the hot paths free under
//! [`crate::NullRecorder`] (measured by the `bench_obs` span benchmark).
//!
//! Guards are closed explicitly with [`SpanGuard::end`] rather than on
//! drop, because emitting from `Drop` would need the recorder borrowed
//! for the guard's whole lifetime. The [`span!`] macro wraps the common
//! begin/run/end pattern around a block.

use crate::recorder::Recorder;
use crate::RoundTimer;

/// Monotone `span_id` allocator; one per event stream.
///
/// Engines own one per run so serial and parallel runs over the same
/// inputs allocate identical id sequences (span events are emitted only
/// from the parallel coordinator). Streams multiplexing concurrent
/// producers — the service daemon — carve disjoint blocks with
/// [`SpanIds::starting_at`] instead of sharing one allocator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanIds {
    next: u64,
}

impl SpanIds {
    /// Ids from 0 upward.
    pub fn new() -> SpanIds {
        SpanIds::default()
    }

    /// Ids from `base` upward, for carving per-producer blocks out of a
    /// shared stream.
    pub fn starting_at(base: u64) -> SpanIds {
        SpanIds { next: base }
    }

    fn allocate(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

/// An open profiling span; close it with [`SpanGuard::end`].
///
/// ```
/// use minobs_obs::{MemoryRecorder, SpanGuard, SpanIds};
/// let mut recorder = MemoryRecorder::new();
/// let mut ids = SpanIds::new();
/// let guard = SpanGuard::begin(&mut recorder, &mut ids, 0, None, "net_send");
/// // ... the timed section ...
/// if let Some(guard) = guard {
///     guard.end(&mut recorder);
/// }
/// assert_eq!(recorder.events().len(), 2);
/// ```
#[derive(Debug)]
#[must_use = "an unclosed span never emits its span_end"]
pub struct SpanGuard {
    span_id: u64,
    round: usize,
    name: &'static str,
    timer: RoundTimer,
}

impl SpanGuard {
    /// Opens a span and emits `span_start`, or returns `None` (consuming
    /// nothing) when the recorder is disabled.
    #[inline]
    pub fn begin<R: Recorder + ?Sized>(
        recorder: &mut R,
        ids: &mut SpanIds,
        round: usize,
        parent: Option<u64>,
        name: &'static str,
    ) -> Option<SpanGuard> {
        if !recorder.enabled() {
            return None;
        }
        let span_id = ids.allocate();
        recorder.on_span_start(round, span_id, parent, name);
        Some(SpanGuard {
            span_id,
            round,
            name,
            timer: RoundTimer::start_if(true),
        })
    }

    /// The open span's id, for parenting nested spans.
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Closes the span, emitting `span_end` with the elapsed duration
    /// (clamped to at least 1 ns so a timed span is distinguishable from
    /// the `nanos == 0` "timing off" convention).
    #[inline]
    pub fn end<R: Recorder + ?Sized>(self, recorder: &mut R) {
        recorder.on_span_end(
            self.round,
            self.span_id,
            self.name,
            self.timer.elapsed_nanos().max(1),
        );
    }
}

/// Runs a block inside a span: `span!(recorder, ids, round, "name", { .. })`.
///
/// `recorder` and `ids` must be place expressions (`&mut`-able
/// identifiers or fields); the block's value is the macro's value.
#[macro_export]
macro_rules! span {
    ($recorder:expr, $ids:expr, $round:expr, $name:expr, $body:block) => {{
        let __minobs_guard = $crate::SpanGuard::begin($recorder, $ids, $round, None, $name);
        let __minobs_out = $body;
        if let Some(__minobs_guard) = __minobs_guard {
            __minobs_guard.end($recorder);
        }
        __minobs_out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryRecorder, NullRecorder, TraceEvent};

    #[test]
    fn guard_emits_bracketed_pair_with_duration() {
        let mut recorder = MemoryRecorder::new();
        let mut ids = SpanIds::new();
        let outer = SpanGuard::begin(&mut recorder, &mut ids, 2, None, "outer").unwrap();
        let inner =
            SpanGuard::begin(&mut recorder, &mut ids, 2, Some(outer.id()), "inner").unwrap();
        inner.end(&mut recorder);
        outer.end(&mut recorder);

        let events = recorder.into_events();
        assert_eq!(
            events
                .iter()
                .map(TraceEvent::kind)
                .collect::<Vec<_>>(),
            ["span_start", "span_start", "span_end", "span_end"]
        );
        match &events[1] {
            TraceEvent::SpanStart {
                span_id, parent, ..
            } => {
                assert_eq!(*span_id, 1);
                assert_eq!(*parent, Some(0));
            }
            other => panic!("expected span_start, got {other:?}"),
        }
        match &events[2] {
            TraceEvent::SpanEnd { span_id, nanos, .. } => {
                assert_eq!(*span_id, 1);
                assert!(*nanos >= 1);
            }
            other => panic!("expected span_end, got {other:?}"),
        }
    }

    #[test]
    fn disabled_recorder_consumes_no_ids() {
        let mut ids = SpanIds::new();
        assert!(SpanGuard::begin(&mut NullRecorder, &mut ids, 0, None, "x").is_none());
        let mut recorder = MemoryRecorder::new();
        let guard = SpanGuard::begin(&mut recorder, &mut ids, 0, None, "y").unwrap();
        assert_eq!(guard.id(), 0);
        guard.end(&mut recorder);
    }

    #[test]
    fn starting_at_carves_disjoint_blocks() {
        let mut ids = SpanIds::starting_at(1 << 20);
        assert_eq!(ids.allocate(), 1 << 20);
        assert_eq!(ids.allocate(), (1 << 20) + 1);
    }

    #[test]
    fn span_macro_wraps_a_block() {
        let mut recorder = MemoryRecorder::new();
        let mut ids = SpanIds::new();
        let value = span!(&mut recorder, &mut ids, 3, "work", {
            21 * 2
        });
        assert_eq!(value, 42);
        let kinds: Vec<&str> = recorder.events().iter().map(TraceEvent::kind).collect();
        assert_eq!(kinds, ["span_start", "span_end"]);
    }
}
