//! Atomic metrics: counters, gauges, and fixed-bucket histograms.
//!
//! All instruments are lock-free (`AtomicU64` with relaxed ordering —
//! metrics need totals, not synchronisation). The registry itself uses a
//! mutex only on the cold get-or-create path; engines resolve their
//! instruments once up front and update handles on the hot path.

use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{MessageStatus, RoundCounts};
use crate::recorder::Recorder;

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can be set, or ratcheted to a maximum.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger.
    #[inline]
    pub fn ratchet_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are cumulative-style upper bounds: an observation lands in the
/// first bucket whose bound is `>= value`, or in the implicit overflow
/// bucket. Bounds are fixed at construction — no allocation or locking on
/// `observe`.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Per-bucket exemplars: the most recent `(trace_id, value)` whose
    /// observation landed in that bucket (overflow bucket last). Fed only
    /// by the explicit [`Histogram::record_exemplar`] call, so `observe`
    /// on the hot path stays lock-free.
    exemplars: Mutex<Vec<Option<(u128, u64)>>>,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds (plus an implicit
    /// overflow bucket).
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            exemplars: Mutex::new(vec![None; bounds.len() + 1]),
        }
    }

    /// Upper bounds suited to round/horizon latencies, 1µs .. 10s.
    pub fn latency_bounds() -> Vec<u64> {
        // Powers of ten in nanoseconds with 1-2-5 subdivisions, capped
        // at the documented 10 s upper bound. The 1-2-5 ladder keeps the
        // worst-case quantile error at 2.5× instead of the 3.33× a 1-3
        // ladder allows — tight enough that p95/p99 stop collapsing onto
        // the same bucket under service-shaped latency distributions.
        const MAX_BOUND: u64 = 10_000_000_000;
        let mut bounds = Vec::new();
        let mut decade: u64 = 1_000;
        while decade <= MAX_BOUND {
            bounds.push(decade);
            for step in [2u64, 5] {
                let bound = decade.saturating_mul(step);
                if bound <= MAX_BOUND {
                    bounds.push(bound);
                }
            }
            decade = decade.saturating_mul(10);
        }
        bounds
    }

    /// Upper bounds suited to frontier/queue sizes, 1 .. 10^7.
    pub fn size_bounds() -> Vec<u64> {
        let mut bounds = Vec::new();
        let mut decade: u64 = 1;
        while decade <= 10_000_000 {
            bounds.push(decade);
            bounds.push(decade * 3);
            decade *= 10;
        }
        bounds
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let index = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Attaches `trace_id` as the exemplar of the bucket `value` lands
    /// in, overwriting that bucket's previous exemplar. Callers that can
    /// name the trace behind an observation call this *alongside*
    /// [`Histogram::observe`]; the counts themselves are untouched.
    pub fn record_exemplar(&self, value: u64, trace_id: u128) {
        let index = self.bounds.partition_point(|&bound| bound < value);
        let mut exemplars = self.exemplars.lock().unwrap_or_else(|e| e.into_inner());
        exemplars[index] = Some((trace_id, value));
    }

    /// Per-bucket exemplars (overflow bucket last): the most recent
    /// `(trace_id, value)` recorded into each bucket, if any.
    pub fn exemplars(&self) -> Vec<Option<(u128, u64)>> {
        self.exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The exemplar of the highest bucket holding one — the trace id of
    /// the slowest observation anyone bothered to exemplify, which is
    /// the one an investigation wants first.
    pub fn slowest_exemplar(&self) -> Option<(u128, u64)> {
        self.exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .rev()
            .find_map(|slot| *slot)
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The configured upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Folds another histogram's observations into this one. The two
    /// histograms must share identical bounds — multi-thread drivers give
    /// each thread its own instrument and merge at the end, so the merged
    /// quantiles have exactly the same semantics as a single shared
    /// histogram would (bucket counts are additive).
    pub fn merge_from(&self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds differ: {} vs {} buckets",
                self.bounds.len(),
                other.bounds.len()
            ));
        }
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(())
    }

    /// Estimates the `q`-quantile (`q` in `0.0..=1.0`, clamped) by linear
    /// interpolation inside the bucket where the cumulative count crosses
    /// `q * count` — the same estimate Prometheus's `histogram_quantile`
    /// computes. Quantiles landing in the overflow bucket report the
    /// highest finite bound. Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let highest_finite = || match self.bounds.last() {
            Some(&bound) => bound as f64,
            // Degenerate no-bounds histogram: the mean is all we have.
            None => self.sum() as f64 / total as f64,
        };
        let mut cumulative = 0u64;
        for (index, &bucket) in counts.iter().enumerate() {
            let before = cumulative;
            cumulative += bucket;
            if bucket == 0 || (cumulative as f64) < target {
                continue;
            }
            if index == self.bounds.len() {
                return Some(highest_finite());
            }
            let lower = if index == 0 {
                0.0
            } else {
                self.bounds[index - 1] as f64
            };
            let upper = self.bounds[index] as f64;
            let fraction = ((target - before as f64) / bucket as f64).clamp(0.0, 1.0);
            return Some(lower + fraction * (upper - lower));
        }
        Some(highest_finite())
    }

    fn snapshot(&self) -> Value {
        let mut map = Map::new();
        map.insert("count".to_string(), Value::from(self.count()));
        map.insert("sum".to_string(), Value::from(self.sum()));
        map.insert(
            "bounds".to_string(),
            Value::from(self.bounds.clone()),
        );
        map.insert("buckets".to_string(), Value::from(self.bucket_counts()));
        Value::Object(map)
    }

    /// Rebuilds a histogram from its snapshot JSON (`{count, sum,
    /// bounds, buckets}`, as emitted inside `MetricsRegistry::snapshot`).
    /// Returns `None` on any shape mismatch: missing fields, a bucket
    /// list that does not cover the bounds plus overflow, or
    /// non-ascending bounds. Fleet tooling uses this to pull per-node
    /// snapshots over RPC and fold them together with [`merge_from`]
    /// (same-bounds quantile semantics as one shared histogram).
    ///
    /// [`merge_from`]: Histogram::merge_from
    pub fn from_snapshot(value: &Value) -> Option<Histogram> {
        let list = |field: &str| -> Option<Vec<u64>> {
            value
                .get(field)?
                .as_array()?
                .iter()
                .map(Value::as_u64)
                .collect()
        };
        let bounds = list("bounds")?;
        let buckets = list("buckets")?;
        if buckets.len() != bounds.len() + 1 || !bounds.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        let histogram = Histogram::new(&bounds);
        for (slot, count) in histogram.buckets.iter().zip(&buckets) {
            slot.store(*count, Ordering::Relaxed);
        }
        histogram
            .count
            .store(value.get("count")?.as_u64()?, Ordering::Relaxed);
        histogram
            .sum
            .store(value.get("sum")?.as_u64()?, Ordering::Relaxed);
        Some(histogram)
    }
}

/// A named registry of counters, gauges, and histograms.
///
/// `counter`/`gauge`/`histogram` get-or-create and hand back `Arc`
/// handles; updating a handle never touches the registry lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::default()))
            .clone()
    }

    /// The histogram named `name`, created on first use with `bounds`.
    /// Later calls return the existing instrument regardless of `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Handles to every registered histogram, for quantile summaries.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, histogram)| (name.clone(), Arc::clone(histogram)))
            .collect()
    }

    /// Renders every instrument in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers, counters and gauges as single samples,
    /// histograms as cumulative `_bucket{le="..."}` series (ending in
    /// `+Inf`) plus `_sum` and `_count`. Metric names are sanitised to the
    /// Prometheus charset (`.` becomes `_`); the original registry name is
    /// kept in the `# HELP` line.
    ///
    /// Finite bucket lines carry their exemplar, when one was recorded,
    /// in the OpenMetrics syntax: `... # {trace_id="<32 hex>"} <value>`.
    /// The `+Inf` line never does — it stays machine-trivial to parse,
    /// and the overflow exemplar is reachable via `stats.latency`.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;

        fn sanitise(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }

        let mut out = String::new();
        for (name, counter) in self.counters.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let id = sanitise(name);
            let _ = writeln!(out, "# HELP {id} minobs counter `{name}`");
            let _ = writeln!(out, "# TYPE {id} counter");
            let _ = writeln!(out, "{id} {}", counter.get());
        }
        for (name, gauge) in self.gauges.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let id = sanitise(name);
            let _ = writeln!(out, "# HELP {id} minobs gauge `{name}`");
            let _ = writeln!(out, "# TYPE {id} gauge");
            let _ = writeln!(out, "{id} {}", gauge.get());
        }
        for (name, histogram) in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let id = sanitise(name);
            let _ = writeln!(out, "# HELP {id} minobs histogram `{name}`");
            let _ = writeln!(out, "# TYPE {id} histogram");
            let counts = histogram.bucket_counts();
            let exemplars = histogram.exemplars();
            let mut cumulative = 0u64;
            for (index, (bound, count)) in histogram.bounds().iter().zip(&counts).enumerate() {
                cumulative += count;
                match exemplars.get(index).copied().flatten() {
                    Some((trace_id, value)) => {
                        let _ = writeln!(
                            out,
                            "{id}_bucket{{le=\"{bound}\"}} {cumulative} # {{trace_id=\"{trace_id:032x}\"}} {value}"
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{id}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                }
            }
            cumulative += counts.last().copied().unwrap_or(0);
            let _ = writeln!(out, "{id}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{id}_sum {}", histogram.sum());
            let _ = writeln!(out, "{id}_count {cumulative}");
        }
        out
    }

    /// A point-in-time JSON snapshot of every instrument, keyed by name.
    pub fn snapshot(&self) -> Value {
        let mut root = Map::new();
        let mut counters = Map::new();
        for (name, counter) in self.counters.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            counters.insert(name.clone(), Value::from(counter.get()));
        }
        let mut gauges = Map::new();
        for (name, gauge) in self.gauges.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            gauges.insert(name.clone(), Value::from(gauge.get()));
        }
        let mut histograms = Map::new();
        for (name, histogram) in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            histograms.insert(name.clone(), histogram.snapshot());
        }
        root.insert("counters".to_string(), Value::Object(counters));
        root.insert("gauges".to_string(), Value::Object(gauges));
        root.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(root)
    }
}

/// A [`Recorder`] that folds the event stream into a [`MetricsRegistry`].
///
/// Instrument handles are resolved once at construction; the hooks only
/// touch atomics. Metric names are stable:
///
/// | name | kind | fed by |
/// |------|------|--------|
/// | `engine.rounds` | counter | every `round_end` |
/// | `engine.messages_{sent,delivered,dropped,misaddressed}` | counter | `round_end` counts |
/// | `engine.decisions` | counter | every `decision` |
/// | `engine.round_latency_ns` | histogram | `round_end` nanos (when timed) |
/// | `engine.runs` | counter | every `run_end` |
/// | `checker.frontier_size` | histogram | every `checker_round` |
/// | `checker.views` | gauge (max) | every `checker_round` |
/// | `checker.round_latency_ns` | histogram | `checker_round` nanos (when timed) |
/// | `checker.horizons` | counter | every `horizon` |
/// | `checker.horizon_latency_ns` | histogram | `horizon` nanos (when timed) |
/// | `checker.states` | gauge (max) | every `checker_progress` (cumulative states) |
/// | `checker.heartbeats` | counter | every `checker_progress` |
/// | `span.{name}.duration_ns` | histogram | every timed `span_end`, per span name |
/// | `svc.requests` | counter | every `svc_request` |
/// | `svc.responses_{ok,err}` | counter | every `svc_response` by outcome |
/// | `svc.request_latency_ns` | histogram | `svc_response` nanos (when timed) |
/// | `svc.method.{method}.latency_ns` | histogram | timed `svc_response`, per method |
/// | `svc.gossip_rounds` | counter | every `gossip_round` |
/// | `svc.gossip_deltas_{sent,received}` | counter | `gossip_round` counts |
/// | `svc.gossip_applied` | counter | every accepted `gossip_apply` |
/// | `svc.gossip_rejected` | counter | every rejected `gossip_apply` |
/// | `svc.gossip_round_latency_ns` | histogram | `gossip_round` nanos (when timed) |
/// | `svc.gossip_peer_down` | counter | every `peer_down` |
///
/// The service's verdict cache feeds `svc.cache_{hits,misses,subsumptions}`
/// counters directly (not through the event stream) so the totals stay
/// exact even when several recorders share one registry. The daemon's
/// health/SLO plane likewise feeds `svc.slo_p99_violations` (counter:
/// timed responses over the configured p99 target) and `svc.ready`
/// (gauge: 1 while the node should receive traffic) directly.
pub struct MetricsRecorder {
    registry: Arc<MetricsRegistry>,
    rounds: Arc<Counter>,
    sent: Arc<Counter>,
    delivered: Arc<Counter>,
    dropped: Arc<Counter>,
    misaddressed: Arc<Counter>,
    decisions: Arc<Counter>,
    runs: Arc<Counter>,
    round_latency: Arc<Histogram>,
    frontier_size: Arc<Histogram>,
    views: Arc<Gauge>,
    checker_round_latency: Arc<Histogram>,
    horizons: Arc<Counter>,
    horizon_latency: Arc<Histogram>,
    checker_states: Arc<Gauge>,
    checker_heartbeats: Arc<Counter>,
    svc_requests: Arc<Counter>,
    svc_responses_ok: Arc<Counter>,
    svc_responses_err: Arc<Counter>,
    svc_request_latency: Arc<Histogram>,
    wal_appends: Arc<Counter>,
    wal_append_bytes: Arc<Counter>,
    wal_replayed_records: Arc<Counter>,
    wal_degraded: Arc<Gauge>,
    gossip_rounds: Arc<Counter>,
    gossip_deltas_sent: Arc<Counter>,
    gossip_deltas_received: Arc<Counter>,
    gossip_applied: Arc<Counter>,
    gossip_rejected: Arc<Counter>,
    gossip_round_latency: Arc<Histogram>,
    gossip_peer_down: Arc<Counter>,
    /// Lazily created per-span-name and per-method histograms, cached so
    /// the hot path resolves each name through the registry lock once.
    span_latency: BTreeMap<String, Arc<Histogram>>,
    method_latency: BTreeMap<String, Arc<Histogram>>,
    latency_bounds: Vec<u64>,
}

impl MetricsRecorder {
    /// Wires a recorder onto `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> MetricsRecorder {
        let latency = Histogram::latency_bounds();
        let sizes = Histogram::size_bounds();
        MetricsRecorder {
            rounds: registry.counter("engine.rounds"),
            sent: registry.counter("engine.messages_sent"),
            delivered: registry.counter("engine.messages_delivered"),
            dropped: registry.counter("engine.messages_dropped"),
            misaddressed: registry.counter("engine.messages_misaddressed"),
            decisions: registry.counter("engine.decisions"),
            runs: registry.counter("engine.runs"),
            round_latency: registry.histogram("engine.round_latency_ns", &latency),
            frontier_size: registry.histogram("checker.frontier_size", &sizes),
            views: registry.gauge("checker.views"),
            checker_round_latency: registry.histogram("checker.round_latency_ns", &latency),
            horizons: registry.counter("checker.horizons"),
            horizon_latency: registry.histogram("checker.horizon_latency_ns", &latency),
            checker_states: registry.gauge("checker.states"),
            checker_heartbeats: registry.counter("checker.heartbeats"),
            svc_requests: registry.counter("svc.requests"),
            svc_responses_ok: registry.counter("svc.responses_ok"),
            svc_responses_err: registry.counter("svc.responses_err"),
            svc_request_latency: registry.histogram("svc.request_latency_ns", &latency),
            wal_appends: registry.counter("svc.wal_appends"),
            wal_append_bytes: registry.counter("svc.wal_append_bytes"),
            wal_replayed_records: registry.counter("svc.wal_replayed_records"),
            wal_degraded: registry.gauge("svc.wal_degraded"),
            gossip_rounds: registry.counter("svc.gossip_rounds"),
            gossip_deltas_sent: registry.counter("svc.gossip_deltas_sent"),
            gossip_deltas_received: registry.counter("svc.gossip_deltas_received"),
            gossip_applied: registry.counter("svc.gossip_applied"),
            gossip_rejected: registry.counter("svc.gossip_rejected"),
            gossip_round_latency: registry.histogram("svc.gossip_round_latency_ns", &latency),
            gossip_peer_down: registry.counter("svc.gossip_peer_down"),
            span_latency: BTreeMap::new(),
            method_latency: BTreeMap::new(),
            latency_bounds: latency,
            registry,
        }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn span_histogram(&mut self, name: &str) -> Arc<Histogram> {
        if let Some(histogram) = self.span_latency.get(name) {
            return Arc::clone(histogram);
        }
        let histogram = self
            .registry
            .histogram(&format!("span.{name}.duration_ns"), &self.latency_bounds);
        self.span_latency
            .insert(name.to_string(), Arc::clone(&histogram));
        histogram
    }

    fn method_histogram(&mut self, method: &str) -> Arc<Histogram> {
        if let Some(histogram) = self.method_latency.get(method) {
            return Arc::clone(histogram);
        }
        let histogram = self.registry.histogram(
            &format!("svc.method.{method}.latency_ns"),
            &self.latency_bounds,
        );
        self.method_latency
            .insert(method.to_string(), Arc::clone(&histogram));
        histogram
    }
}

impl Recorder for MetricsRecorder {
    fn on_message(&mut self, _round: usize, _from: usize, _to: usize, _status: MessageStatus) {
        // Message totals come from the round_end counts; per-message events
        // would double-count them.
    }

    fn on_decision(&mut self, _round: usize, _node: usize, _value: u64) {
        self.decisions.inc();
    }

    fn on_round_end(&mut self, _round: usize, counts: RoundCounts, nanos: u64) {
        self.rounds.inc();
        self.sent.add(counts.sent as u64);
        self.delivered.add(counts.delivered as u64);
        self.dropped.add(counts.dropped as u64);
        self.misaddressed.add(counts.misaddressed as u64);
        if nanos > 0 {
            self.round_latency.observe(nanos);
        }
    }

    fn on_span_start(&mut self, _round: usize, _span_id: u64, _parent: Option<u64>, _name: &str) {
        // Spans only feed metrics on close, when the duration is known.
    }

    fn on_span_end(&mut self, _round: usize, _span_id: u64, name: &str, nanos: u64) {
        if nanos > 0 {
            self.span_histogram(name).observe(nanos);
        }
    }

    fn on_checker_progress(&mut self, _round: usize, _frontier: usize, states: usize) {
        self.checker_heartbeats.inc();
        self.checker_states.ratchet_max(states as u64);
    }

    fn on_checker_round(&mut self, _round: usize, frontier: usize, views: usize, nanos: u64) {
        self.frontier_size.observe(frontier as u64);
        self.views.ratchet_max(views as u64);
        if nanos > 0 {
            self.checker_round_latency.observe(nanos);
        }
    }

    fn on_horizon(&mut self, _horizon: usize, _solvable: bool, nanos: u64) {
        self.horizons.inc();
        if nanos > 0 {
            self.horizon_latency.observe(nanos);
        }
    }

    fn on_run_end(&mut self, _rounds: usize, _totals: RoundCounts, _nanos: u64) {
        self.runs.inc();
    }

    fn on_svc_request(&mut self, _seq: u64, _method: &str) {
        self.svc_requests.inc();
    }

    fn on_svc_response(&mut self, _seq: u64, method: &str, ok: bool, _cache: &'static str, nanos: u64) {
        if ok {
            self.svc_responses_ok.inc();
        } else {
            self.svc_responses_err.inc();
        }
        if nanos > 0 {
            self.svc_request_latency.observe(nanos);
            self.method_histogram(method).observe(nanos);
        }
    }

    fn on_wal_append(&mut self, _op: &'static str, _key: &str, bytes: u64) {
        self.wal_appends.inc();
        self.wal_append_bytes.add(bytes);
    }

    fn on_wal_replay(&mut self, records: u64, _bytes: u64, _dropped_tail: bool) {
        self.wal_replayed_records.add(records);
    }

    fn on_wal_degraded(&mut self, _error: &str) {
        self.wal_degraded.set(1);
    }

    fn on_gossip_round(&mut self, _peer: &str, sent: u64, received: u64, nanos: u64) {
        self.gossip_rounds.inc();
        self.gossip_deltas_sent.add(sent);
        self.gossip_deltas_received.add(received);
        if nanos > 0 {
            self.gossip_round_latency.observe(nanos);
        }
    }

    fn on_gossip_apply(&mut self, _peer: &str, _op: &'static str, _key: &str, accepted: bool) {
        if accepted {
            self.gossip_applied.inc();
        } else {
            self.gossip_rejected.inc();
        }
    }

    fn on_peer_down(&mut self, _peer: &str, _failures: u64) {
        self.gossip_peer_down.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("x").get(), 5);
        let g = registry.gauge("y");
        g.set(3);
        g.ratchet_max(10);
        g.ratchet_max(2);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5); // -> bucket 0 (<= 10)
        h.observe(10); // -> bucket 0 (bound >= value)
        h.observe(50); // -> bucket 1
        h.observe(1000); // -> overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1065);
    }

    #[test]
    fn merge_from_is_additive_per_bucket() {
        let a = Histogram::new(&[10, 100]);
        let b = Histogram::new(&[10, 100]);
        a.observe(5);
        a.observe(50);
        b.observe(7);
        b.observe(5_000);
        a.merge_from(&b).unwrap();
        assert_eq!(a.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 5_062);
        // Quantiles over the merged instrument behave as if one shared
        // histogram had seen every observation.
        assert_eq!(a.quantile(1.0), Some(100.0));
    }

    #[test]
    fn merge_from_rejects_mismatched_bounds() {
        let a = Histogram::new(&[10, 100]);
        let b = Histogram::new(&[10]);
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn metrics_recorder_folds_round_counts() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut recorder = MetricsRecorder::new(Arc::clone(&registry));
        recorder.on_round_end(
            0,
            RoundCounts {
                sent: 6,
                delivered: 5,
                dropped: 1,
                misaddressed: 2,
            },
            1_500,
        );
        recorder.on_round_end(
            1,
            RoundCounts {
                sent: 2,
                delivered: 2,
                dropped: 0,
                misaddressed: 0,
            },
            0,
        );
        recorder.on_decision(1, 0, 1);
        recorder.on_run_end(2, RoundCounts::default(), 0);
        assert_eq!(registry.counter("engine.rounds").get(), 2);
        assert_eq!(registry.counter("engine.messages_sent").get(), 8);
        assert_eq!(registry.counter("engine.messages_dropped").get(), 1);
        assert_eq!(registry.counter("engine.decisions").get(), 1);
        assert_eq!(registry.counter("engine.runs").get(), 1);
        // Untimed rounds (nanos == 0) stay out of the latency histogram.
        assert_eq!(
            registry
                .histogram("engine.round_latency_ns", &[])
                .count(),
            1
        );
    }

    #[test]
    fn latency_bounds_stay_inside_the_documented_range() {
        let bounds = Histogram::latency_bounds();
        assert_eq!(bounds.first().copied(), Some(1_000), "1µs lower bound");
        assert_eq!(
            bounds.last().copied(),
            Some(10_000_000_000),
            "10s upper bound — no 30s stray bucket"
        );
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quantile_interpolates_within_the_crossing_bucket() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5u64, 10, 20, 40, 60, 80, 500, 5000] {
            h.observe(v);
        }
        // 8 samples: per-bucket counts [2, 4, 1, 1], cumulative [2, 6, 7, 8].
        // q=0.5 -> target 4.0 crosses in bucket (10,100]: lower 10,
        // fraction (4-2)/4 = 0.5 -> 10 + 0.5*90 = 55.
        assert_eq!(h.quantile(0.5), Some(55.0));
        // q=0 lands at the lower edge of the first non-empty bucket.
        assert_eq!(h.quantile(0.0), Some(0.0));
        // q in the overflow bucket reports the highest finite bound.
        assert_eq!(h.quantile(1.0), Some(1000.0));
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(7.0), Some(1000.0));
        assert_eq!(h.quantile(-1.0), Some(0.0));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new(&[10]);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn from_snapshot_round_trips_and_merges() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5u64, 20, 60, 500, 5000] {
            h.observe(v);
        }
        let rebuilt = Histogram::from_snapshot(&h.snapshot()).unwrap();
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.sum(), h.sum());
        assert_eq!(rebuilt.bucket_counts(), h.bucket_counts());
        assert_eq!(rebuilt.quantile(0.5), h.quantile(0.5));
        // Rebuilt histograms merge like live ones — the fleet-aggregate
        // path: per-node snapshots folded into one cluster histogram.
        let fleet = Histogram::new(&[10, 100, 1000]);
        fleet.merge_from(&rebuilt).unwrap();
        fleet.merge_from(&rebuilt).unwrap();
        assert_eq!(fleet.count(), 2 * h.count());

        // Shape mismatches read as None, not garbage.
        let mut bad = Map::new();
        bad.insert("count".to_string(), Value::from(1u64));
        assert!(Histogram::from_snapshot(&Value::Object(bad)).is_none());
        let mut snap = h.snapshot();
        if let Value::Object(map) = &mut snap {
            map.remove("buckets");
            map.insert("buckets".to_string(), Value::from(vec![1u64, 2]));
        }
        assert!(
            Histogram::from_snapshot(&snap).is_none(),
            "bucket list must cover bounds plus overflow"
        );
    }

    #[test]
    fn quantile_without_bounds_degenerates_to_the_mean() {
        let h = Histogram::new(&[]);
        h.observe(10);
        h.observe(30);
        assert_eq!(h.quantile(0.5), Some(20.0));
    }

    #[test]
    fn render_text_exposes_cumulative_buckets_summing_to_count() {
        let registry = MetricsRegistry::new();
        registry.counter("svc.requests").add(3);
        registry.gauge("checker.views").set(9);
        let h = registry.histogram("engine.round_latency_ns", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);

        let text = registry.render_text();
        assert!(text.contains("# TYPE svc_requests counter"));
        assert!(text.contains("svc_requests 3"));
        assert!(text.contains("# TYPE checker_views gauge"));
        assert!(text.contains("# HELP engine_round_latency_ns minobs histogram `engine.round_latency_ns`"));
        assert!(text.contains("# TYPE engine_round_latency_ns histogram"));
        assert!(text.contains("engine_round_latency_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("engine_round_latency_ns_bucket{le=\"100\"} 2"));
        assert!(text.contains("engine_round_latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("engine_round_latency_ns_sum 5055"));
        assert!(text.contains("engine_round_latency_ns_count 3"));

        // The +Inf bucket and _count agree with the histogram's count.
        let inf: u64 = text
            .lines()
            .find(|l| l.starts_with("engine_round_latency_ns_bucket{le=\"+Inf\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert_eq!(inf, h.count());
    }

    #[test]
    fn exemplars_surface_in_render_text_but_not_on_inf() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("svc.request_latency_ns", &[10, 100]);
        h.observe(50);
        h.record_exemplar(50, 0xabc);
        h.observe(5_000); // overflow observation, exemplified
        h.record_exemplar(5_000, 0xdef);

        let text = registry.render_text();
        assert!(
            text.contains(
                "svc_request_latency_ns_bucket{le=\"100\"} 1 # {trace_id=\"00000000000000000000000000000abc\"} 50"
            ),
            "{text}"
        );
        // The +Inf line stays bare even though the overflow bucket holds
        // an exemplar; it is still reachable programmatically.
        assert!(text.contains("svc_request_latency_ns_bucket{le=\"+Inf\"} 2\n"));
        assert_eq!(h.slowest_exemplar(), Some((0xdef, 5_000)));
        // A newer observation in the same bucket replaces the exemplar.
        h.record_exemplar(60, 0x123);
        assert_eq!(h.exemplars()[1], Some((0x123, 60)));
        // Exemplars never perturb the counts.
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn span_ends_feed_per_name_histograms() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut recorder = MetricsRecorder::new(Arc::clone(&registry));
        recorder.on_span_start(0, 0, None, "net_send");
        recorder.on_span_end(0, 0, "net_send", 1_500);
        recorder.on_span_end(1, 1, "net_send", 2_500);
        recorder.on_span_end(1, 2, "net_advance", 0); // untimed: ignored
        assert_eq!(
            registry.histogram("span.net_send.duration_ns", &[]).count(),
            2
        );
        assert_eq!(
            registry
                .histogram("span.net_advance.duration_ns", &[])
                .count(),
            0
        );
    }

    #[test]
    fn svc_responses_feed_per_method_histograms() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut recorder = MetricsRecorder::new(Arc::clone(&registry));
        recorder.on_svc_response(0, "solvable", true, "miss", 800);
        recorder.on_svc_response(1, "solvable", true, "hit", 200);
        recorder.on_svc_response(2, "stats", true, "none", 100);
        let solvable = registry.histogram("svc.method.solvable.latency_ns", &[]);
        assert_eq!(solvable.count(), 2);
        assert!(solvable.quantile(0.5).is_some());
        assert_eq!(registry.histogram("svc.method.stats.latency_ns", &[]).count(), 1);
    }

    #[test]
    fn checker_progress_ratchets_cumulative_states() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut recorder = MetricsRecorder::new(Arc::clone(&registry));
        recorder.on_checker_progress(3, 128, 4_096);
        recorder.on_checker_progress(5, 64, 8_192);
        assert_eq!(registry.gauge("checker.states").get(), 8_192);
        assert_eq!(registry.counter("checker.heartbeats").get(), 2);
    }

    mod quantile_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn quantile_lands_within_one_bucket_of_the_order_statistic(
                samples in proptest::collection::vec(0u64..200_000, 1..200),
                q_percent in 0u64..101,
            ) {
                let bounds = [10u64, 100, 1_000, 10_000, 100_000];
                let h = Histogram::new(&bounds);
                for &s in &samples {
                    h.observe(s);
                }
                let q = q_percent as f64 / 100.0;
                let estimate = h.quantile(q).unwrap();

                let mut sorted = samples.clone();
                sorted.sort_unstable();
                let rank = ((q * sorted.len() as f64).ceil() as usize)
                    .clamp(1, sorted.len());
                let order_stat = sorted[rank - 1];

                let stat_bucket = bounds.partition_point(|&b| b < order_stat);
                let est_bucket = bounds.partition_point(|&b| (b as f64) < estimate);
                prop_assert!(
                    est_bucket.abs_diff(stat_bucket) <= 1,
                    "q={q}: estimate {estimate} (bucket {est_bucket}) strays more than \
                     one bucket from order statistic {order_stat} (bucket {stat_bucket})"
                );
            }
        }
    }

    #[test]
    fn snapshot_lists_every_instrument() {
        let registry = MetricsRegistry::new();
        registry.counter("a").inc();
        registry.gauge("b").set(2);
        registry.histogram("c", &[1]).observe(1);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("counters").and_then(|v| v.get("a")).and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            snap.get("gauges").and_then(|v| v.get("b")).and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            snap.get("histograms")
                .and_then(|v| v.get("c"))
                .and_then(|v| v.get("count"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }
}
