//! Atomic metrics: counters, gauges, and fixed-bucket histograms.
//!
//! All instruments are lock-free (`AtomicU64` with relaxed ordering —
//! metrics need totals, not synchronisation). The registry itself uses a
//! mutex only on the cold get-or-create path; engines resolve their
//! instruments once up front and update handles on the hot path.

use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{MessageStatus, RoundCounts};
use crate::recorder::Recorder;

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can be set, or ratcheted to a maximum.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger.
    #[inline]
    pub fn ratchet_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are cumulative-style upper bounds: an observation lands in the
/// first bucket whose bound is `>= value`, or in the implicit overflow
/// bucket. Bounds are fixed at construction — no allocation or locking on
/// `observe`.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds (plus an implicit
    /// overflow bucket).
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Upper bounds suited to round/horizon latencies, 1µs .. 10s.
    pub fn latency_bounds() -> Vec<u64> {
        // Powers of ten in nanoseconds with 1-3 subdivisions.
        let mut bounds = Vec::new();
        let mut decade: u64 = 1_000;
        while decade <= 10_000_000_000 {
            bounds.push(decade);
            bounds.push(decade.saturating_mul(3));
            decade = decade.saturating_mul(10);
        }
        bounds
    }

    /// Upper bounds suited to frontier/queue sizes, 1 .. 10^7.
    pub fn size_bounds() -> Vec<u64> {
        let mut bounds = Vec::new();
        let mut decade: u64 = 1;
        while decade <= 10_000_000 {
            bounds.push(decade);
            bounds.push(decade * 3);
            decade *= 10;
        }
        bounds
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let index = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn snapshot(&self) -> Value {
        let mut map = Map::new();
        map.insert("count".to_string(), Value::from(self.count()));
        map.insert("sum".to_string(), Value::from(self.sum()));
        map.insert(
            "bounds".to_string(),
            Value::from(self.bounds.clone()),
        );
        map.insert("buckets".to_string(), Value::from(self.bucket_counts()));
        Value::Object(map)
    }
}

/// A named registry of counters, gauges, and histograms.
///
/// `counter`/`gauge`/`histogram` get-or-create and hand back `Arc`
/// handles; updating a handle never touches the registry lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::default()))
            .clone()
    }

    /// The histogram named `name`, created on first use with `bounds`.
    /// Later calls return the existing instrument regardless of `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// A point-in-time JSON snapshot of every instrument, keyed by name.
    pub fn snapshot(&self) -> Value {
        let mut root = Map::new();
        let mut counters = Map::new();
        for (name, counter) in self.counters.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            counters.insert(name.clone(), Value::from(counter.get()));
        }
        let mut gauges = Map::new();
        for (name, gauge) in self.gauges.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            gauges.insert(name.clone(), Value::from(gauge.get()));
        }
        let mut histograms = Map::new();
        for (name, histogram) in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            histograms.insert(name.clone(), histogram.snapshot());
        }
        root.insert("counters".to_string(), Value::Object(counters));
        root.insert("gauges".to_string(), Value::Object(gauges));
        root.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(root)
    }
}

/// A [`Recorder`] that folds the event stream into a [`MetricsRegistry`].
///
/// Instrument handles are resolved once at construction; the hooks only
/// touch atomics. Metric names are stable:
///
/// | name | kind | fed by |
/// |------|------|--------|
/// | `engine.rounds` | counter | every `round_end` |
/// | `engine.messages_{sent,delivered,dropped,misaddressed}` | counter | `round_end` counts |
/// | `engine.decisions` | counter | every `decision` |
/// | `engine.round_latency_ns` | histogram | `round_end` nanos (when timed) |
/// | `engine.runs` | counter | every `run_end` |
/// | `checker.frontier_size` | histogram | every `checker_round` |
/// | `checker.views` | gauge (max) | every `checker_round` |
/// | `checker.round_latency_ns` | histogram | `checker_round` nanos (when timed) |
/// | `checker.horizons` | counter | every `horizon` |
/// | `checker.horizon_latency_ns` | histogram | `horizon` nanos (when timed) |
/// | `svc.requests` | counter | every `svc_request` |
/// | `svc.responses_{ok,err}` | counter | every `svc_response` by outcome |
/// | `svc.request_latency_ns` | histogram | `svc_response` nanos (when timed) |
///
/// The service's verdict cache feeds `svc.cache_{hits,misses,subsumptions}`
/// counters directly (not through the event stream) so the totals stay
/// exact even when several recorders share one registry.
pub struct MetricsRecorder {
    registry: Arc<MetricsRegistry>,
    rounds: Arc<Counter>,
    sent: Arc<Counter>,
    delivered: Arc<Counter>,
    dropped: Arc<Counter>,
    misaddressed: Arc<Counter>,
    decisions: Arc<Counter>,
    runs: Arc<Counter>,
    round_latency: Arc<Histogram>,
    frontier_size: Arc<Histogram>,
    views: Arc<Gauge>,
    checker_round_latency: Arc<Histogram>,
    horizons: Arc<Counter>,
    horizon_latency: Arc<Histogram>,
    svc_requests: Arc<Counter>,
    svc_responses_ok: Arc<Counter>,
    svc_responses_err: Arc<Counter>,
    svc_request_latency: Arc<Histogram>,
}

impl MetricsRecorder {
    /// Wires a recorder onto `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> MetricsRecorder {
        let latency = Histogram::latency_bounds();
        let sizes = Histogram::size_bounds();
        MetricsRecorder {
            rounds: registry.counter("engine.rounds"),
            sent: registry.counter("engine.messages_sent"),
            delivered: registry.counter("engine.messages_delivered"),
            dropped: registry.counter("engine.messages_dropped"),
            misaddressed: registry.counter("engine.messages_misaddressed"),
            decisions: registry.counter("engine.decisions"),
            runs: registry.counter("engine.runs"),
            round_latency: registry.histogram("engine.round_latency_ns", &latency),
            frontier_size: registry.histogram("checker.frontier_size", &sizes),
            views: registry.gauge("checker.views"),
            checker_round_latency: registry.histogram("checker.round_latency_ns", &latency),
            horizons: registry.counter("checker.horizons"),
            horizon_latency: registry.histogram("checker.horizon_latency_ns", &latency),
            svc_requests: registry.counter("svc.requests"),
            svc_responses_ok: registry.counter("svc.responses_ok"),
            svc_responses_err: registry.counter("svc.responses_err"),
            svc_request_latency: registry.histogram("svc.request_latency_ns", &latency),
            registry,
        }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl Recorder for MetricsRecorder {
    fn on_message(&mut self, _round: usize, _from: usize, _to: usize, _status: MessageStatus) {
        // Message totals come from the round_end counts; per-message events
        // would double-count them.
    }

    fn on_decision(&mut self, _round: usize, _node: usize, _value: u64) {
        self.decisions.inc();
    }

    fn on_round_end(&mut self, _round: usize, counts: RoundCounts, nanos: u64) {
        self.rounds.inc();
        self.sent.add(counts.sent as u64);
        self.delivered.add(counts.delivered as u64);
        self.dropped.add(counts.dropped as u64);
        self.misaddressed.add(counts.misaddressed as u64);
        if nanos > 0 {
            self.round_latency.observe(nanos);
        }
    }

    fn on_checker_round(&mut self, _round: usize, frontier: usize, views: usize, nanos: u64) {
        self.frontier_size.observe(frontier as u64);
        self.views.ratchet_max(views as u64);
        if nanos > 0 {
            self.checker_round_latency.observe(nanos);
        }
    }

    fn on_horizon(&mut self, _horizon: usize, _solvable: bool, nanos: u64) {
        self.horizons.inc();
        if nanos > 0 {
            self.horizon_latency.observe(nanos);
        }
    }

    fn on_run_end(&mut self, _rounds: usize, _totals: RoundCounts, _nanos: u64) {
        self.runs.inc();
    }

    fn on_svc_request(&mut self, _seq: u64, _method: &str) {
        self.svc_requests.inc();
    }

    fn on_svc_response(&mut self, _seq: u64, _method: &str, ok: bool, _cache: &'static str, nanos: u64) {
        if ok {
            self.svc_responses_ok.inc();
        } else {
            self.svc_responses_err.inc();
        }
        if nanos > 0 {
            self.svc_request_latency.observe(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("x").get(), 5);
        let g = registry.gauge("y");
        g.set(3);
        g.ratchet_max(10);
        g.ratchet_max(2);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5); // -> bucket 0 (<= 10)
        h.observe(10); // -> bucket 0 (bound >= value)
        h.observe(50); // -> bucket 1
        h.observe(1000); // -> overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1065);
    }

    #[test]
    fn metrics_recorder_folds_round_counts() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut recorder = MetricsRecorder::new(Arc::clone(&registry));
        recorder.on_round_end(
            0,
            RoundCounts {
                sent: 6,
                delivered: 5,
                dropped: 1,
                misaddressed: 2,
            },
            1_500,
        );
        recorder.on_round_end(
            1,
            RoundCounts {
                sent: 2,
                delivered: 2,
                dropped: 0,
                misaddressed: 0,
            },
            0,
        );
        recorder.on_decision(1, 0, 1);
        recorder.on_run_end(2, RoundCounts::default(), 0);
        assert_eq!(registry.counter("engine.rounds").get(), 2);
        assert_eq!(registry.counter("engine.messages_sent").get(), 8);
        assert_eq!(registry.counter("engine.messages_dropped").get(), 1);
        assert_eq!(registry.counter("engine.decisions").get(), 1);
        assert_eq!(registry.counter("engine.runs").get(), 1);
        // Untimed rounds (nanos == 0) stay out of the latency histogram.
        assert_eq!(
            registry
                .histogram("engine.round_latency_ns", &[])
                .count(),
            1
        );
    }

    #[test]
    fn snapshot_lists_every_instrument() {
        let registry = MetricsRegistry::new();
        registry.counter("a").inc();
        registry.gauge("b").set(2);
        registry.histogram("c", &[1]).observe(1);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("counters").and_then(|v| v.get("a")).and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            snap.get("gauges").and_then(|v| v.get("b")).and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            snap.get("histograms")
                .and_then(|v| v.get("c"))
                .and_then(|v| v.get("count"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }
}
