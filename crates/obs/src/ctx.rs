//! Distributed trace context: the identity a request carries across
//! process and node boundaries.
//!
//! A [`TraceContext`] is a 128-bit `trace_id` plus an optional parent
//! `span_id` — the same shape as a W3C `traceparent` (minus flags).
//! Clients mint a fresh root context per logical call; every hop that
//! forwards work (retry, failover, gossip fan-out) re-sends the same
//! `trace_id` with its own span as the parent, so offline stitching
//! (`trace stitch`) can rebuild the cross-node span tree.
//!
//! The context travels as an additive optional `ctx` object in the
//! `minobs/rpc/v1` envelope:
//!
//! ```json
//! {"ctx": {"trace_id": "0af7651916cd43dd8448eb211c80319c", "parent_span": 7}}
//! ```
//!
//! `parent_span` is omitted for client roots. Parsing is permissive: a
//! malformed `ctx` is treated as absent rather than failing the RPC —
//! tracing must never take down the data plane.

use crate::event::TraceEvent;
use serde_json::{Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter folded into generated trace ids so two ids
/// minted in the same instant still differ.
static TRACE_SALT: AtomicU64 = AtomicU64::new(0);

/// A 128-bit trace identity plus the span to parent under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Nonzero 128-bit trace id shared by every span of one logical
    /// request, across all nodes it touches.
    pub trace_id: u128,
    /// Span id (on the *sending* side) the receiver should parent its
    /// root span under. `None` for a client-minted root.
    pub parent_span: Option<u64>,
}

impl TraceContext {
    /// Mints a fresh root context with a random nonzero `trace_id`.
    ///
    /// Randomness comes from hashing a process-wide counter with two
    /// freshly seeded [`std::collections::hash_map::RandomState`]s —
    /// each carries its own OS-provided seed, so ids are unpredictable
    /// across processes without pulling in an RNG dependency.
    pub fn root() -> Self {
        use std::hash::{BuildHasher, Hasher};
        let salt = TRACE_SALT.fetch_add(1, Ordering::Relaxed);
        let mut id = 0u128;
        while id == 0 {
            let mut hi = std::collections::hash_map::RandomState::new().build_hasher();
            hi.write_u64(salt);
            hi.write_u64(0x6d69_6e6f_6273); // "minobs"
            let mut lo = std::collections::hash_map::RandomState::new().build_hasher();
            lo.write_u64(salt.rotate_left(17));
            lo.write_u64(0x0074_7261_6365); // "trace"
            id = (u128::from(hi.finish()) << 64) | u128::from(lo.finish());
        }
        TraceContext {
            trace_id: id,
            parent_span: None,
        }
    }

    /// The context a downstream hop should receive when `span_id` is
    /// the local span doing the forwarding: same trace, new parent.
    pub fn child(&self, span_id: u64) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: Some(span_id),
        }
    }

    /// The trace id as 32 lowercase hex digits (W3C `trace-id` shape).
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// Parses a 32-lowercase-hex-digit nonzero trace id.
    pub fn parse_trace_id(text: &str) -> Option<u128> {
        if text.len() != 32
            || !text
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        match u128::from_str_radix(text, 16) {
            Ok(0) | Err(_) => None,
            Ok(id) => Some(id),
        }
    }

    /// The envelope form: `{"trace_id": "<32hex>"[, "parent_span": N]}`.
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("trace_id", Value::from(self.trace_id_hex().as_str()));
        if let Some(parent) = self.parent_span {
            map.insert("parent_span", Value::from(parent));
        }
        Value::Object(map)
    }

    /// Permissive parse of the envelope form. Anything malformed — not
    /// an object, bad hex shape, zero id — reads as `None` (no context)
    /// rather than an error.
    pub fn from_json(value: &Value) -> Option<Self> {
        let trace_id = value
            .get("trace_id")
            .and_then(Value::as_str)
            .and_then(Self::parse_trace_id)?;
        Some(TraceContext {
            trace_id,
            parent_span: value.get("parent_span").and_then(Value::as_u64),
        })
    }
}

/// Stamps `ctx` onto the root span of a buffered request: finds the
/// first `span_start` with no *local* parent and sets its `trace_id`
/// and remote `ctx_parent`. The local `parent` stays `None` — within
/// one process the span is still a root; only stitching resolves the
/// remote edge.
pub fn stamp_root_span(events: &mut [TraceEvent], ctx: &TraceContext) {
    for event in events.iter_mut() {
        if let TraceEvent::SpanStart {
            parent: None,
            trace_id,
            ctx_parent,
            ..
        } = event
        {
            *trace_id = Some(ctx.trace_id);
            *ctx_parent = ctx.parent_span;
            return;
        }
    }
}

/// The stable node identity stamped onto trace lines and artifact meta:
/// `MINOBS_NODE_ID` when set and non-empty, else `fallback`.
pub fn node_id_from_env(fallback: &str) -> String {
    match std::env::var("MINOBS_NODE_ID") {
        Ok(id) if !id.trim().is_empty() => id,
        _ => fallback.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_nonzero_and_distinct() {
        let a = TraceContext::root();
        let b = TraceContext::root();
        assert_ne!(a.trace_id, 0);
        assert_ne!(b.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id, "two roots collided");
        assert_eq!(a.parent_span, None);
    }

    #[test]
    fn hex_round_trips_and_children_share_the_trace() {
        let root = TraceContext::root();
        let hex = root.trace_id_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(TraceContext::parse_trace_id(&hex), Some(root.trace_id));
        let child = root.child(42);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span, Some(42));
    }

    #[test]
    fn json_round_trips_with_and_without_parent() {
        let root = TraceContext {
            trace_id: 0xabc,
            parent_span: None,
        };
        let json = root.to_json();
        assert_eq!(json.get("parent_span"), None, "roots omit parent_span");
        assert_eq!(TraceContext::from_json(&json), Some(root));

        let child = root.child(7);
        assert_eq!(TraceContext::from_json(&child.to_json()), Some(child));
    }

    #[test]
    fn malformed_ctx_reads_as_absent() {
        fn ctx_obj(trace_id: Value) -> Value {
            let mut map = Map::new();
            map.insert("trace_id", trace_id);
            Value::Object(map)
        }
        for bad in [
            Value::Null,
            Value::from("0af7651916cd43dd8448eb211c80319c"),
            Value::Object(Map::new()),
            ctx_obj(Value::from(12u64)),
            ctx_obj(Value::from("short")),
            ctx_obj(Value::from("0AF7651916CD43DD8448EB211C80319C")),
            ctx_obj(Value::from("00000000000000000000000000000000")),
            ctx_obj(Value::from("zzzz651916cd43dd8448eb211c80319c")),
        ] {
            assert_eq!(TraceContext::from_json(&bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn stamp_targets_the_first_local_root_span() {
        let ctx = TraceContext {
            trace_id: 0xfeed,
            parent_span: Some(9),
        };
        let mut events = vec![
            TraceEvent::SpanStart {
                round: 0,
                span_id: 1,
                parent: None,
                name: "rpc.check_horizon".into(),
                trace_id: None,
                ctx_parent: None,
            },
            TraceEvent::SpanStart {
                round: 0,
                span_id: 2,
                parent: Some(1),
                name: "check.run".into(),
                trace_id: None,
                ctx_parent: None,
            },
        ];
        stamp_root_span(&mut events, &ctx);
        match &events[0] {
            TraceEvent::SpanStart {
                trace_id,
                ctx_parent,
                ..
            } => {
                assert_eq!(*trace_id, Some(0xfeed));
                assert_eq!(*ctx_parent, Some(9));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &events[1] {
            TraceEvent::SpanStart { trace_id: None, .. } => {}
            other => panic!("child span must stay unstamped: {other:?}"),
        }
    }

    #[test]
    fn node_id_prefers_env_then_fallback() {
        // Avoid touching the process env (other tests run in parallel);
        // only exercise the fallback path here.
        if std::env::var("MINOBS_NODE_ID").is_err() {
            assert_eq!(node_id_from_env("127.0.0.1:9"), "127.0.0.1:9");
        }
    }
}
