//! # minobs-obs — observability for every minobs execution surface
//!
//! Structured event tracing and metrics for the two-process engine, the
//! synchronous network simulator (serial and parallel), and the bounded
//! model checker. Three layers:
//!
//! * **Events** — [`TraceEvent`], a small closed vocabulary of
//!   observations (run/round/message/decision/span/checker), each
//!   serialising to one JSON object under the versioned [`SCHEMA`].
//! * **Recorders** — the [`Recorder`] trait engines thread through their
//!   run loops. [`NullRecorder`] is the default everywhere and compiles
//!   to nothing; [`MemoryRecorder`] buffers for tests; [`JsonlSink`]
//!   streams JSONL; [`MetricsRecorder`] folds events into a
//!   [`MetricsRegistry`]; [`TeeRecorder`] fans out to two of them.
//! * **Metrics** — lock-free [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s in a [`MetricsRegistry`] with a JSON snapshot.
//!
//! The crate deliberately has no dependencies beyond the workspace's
//! `serde`/`serde_json`, and engines keep their original signatures —
//! instrumented variants are `*_with_recorder` siblings, with the old
//! names as thin wrappers passing [`NullRecorder`].
//!
//! See `docs/OBSERVABILITY.md` for the JSONL schema reference and the
//! `MINOBS_TRACE` / `MINOBS_EXP_DIR` environment knobs.

pub mod bench;
mod ctx;
mod event;
mod flight;
mod metrics;
mod recorder;
mod sink;
mod span;

pub use bench::{validate_bench_artifact, BENCH_SCHEMA};
pub use ctx::{node_id_from_env, stamp_root_span, TraceContext};
pub use event::{MessageStatus, RoundCounts, TraceEvent, SCHEMA};
pub use flight::{sample_keep, FlightRecorder, FlightSnapshot, DEFAULT_FLIGHT_EVENTS};
pub use metrics::{Counter, Gauge, Histogram, MetricsRecorder, MetricsRegistry};
pub use recorder::{replay_event, MemoryRecorder, NullRecorder, Recorder, TeeRecorder};
pub use sink::{resolve_trace_value, trace_path_from_env, JsonlSink};
pub use span::{SpanGuard, SpanIds};

use std::time::Instant;

/// A started wall-clock measurement attributed to a recorder hook later.
///
/// Engines only start timers when the recorder is enabled, keeping
/// `Instant::now` syscalls off the uninstrumented hot path:
///
/// ```
/// use minobs_obs::{MemoryRecorder, RoundTimer, Recorder};
/// let mut recorder = MemoryRecorder::new();
/// let timer = RoundTimer::start_if(recorder.enabled());
/// // ... do the round's work ...
/// let nanos = timer.elapsed_nanos();
/// recorder.on_span(0, "round", nanos);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RoundTimer {
    start: Option<Instant>,
}

impl RoundTimer {
    /// A running timer when `enabled`, otherwise an inert one that
    /// reports zero.
    #[inline]
    pub fn start_if(enabled: bool) -> RoundTimer {
        RoundTimer {
            start: enabled.then(Instant::now),
        }
    }

    /// Nanoseconds since start, saturating at `u64::MAX`; zero when inert.
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        match self.start {
            Some(start) => u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_timer_reports_zero() {
        let timer = RoundTimer::start_if(false);
        assert_eq!(timer.elapsed_nanos(), 0);
    }

    #[test]
    fn running_timer_advances() {
        let timer = RoundTimer::start_if(true);
        std::hint::black_box((0..1000).sum::<u64>());
        // Coarse clocks may still read zero immediately, but elapsed must
        // be monotone.
        let a = timer.elapsed_nanos();
        let b = timer.elapsed_nanos();
        assert!(b >= a);
    }
}
