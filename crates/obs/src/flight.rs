//! The always-on flight recorder and the tail-sampling keep policy.
//!
//! A [`FlightRecorder`] is a lock-sharded, fixed-capacity ring of the
//! most recent [`TraceEvent`]s. It is cheap enough to leave attached to
//! a production daemon behind a [`crate::TeeRecorder`]: recording is one
//! atomic fetch-add plus one uncontended shard lock, and the ring
//! overwrites its oldest events instead of growing. When something goes
//! wrong — a panic, a WAL degradation, an SLO burn — [`FlightRecorder::dump`]
//! snapshots the ring into well-formed `minobs/trace/v1` JSONL that
//! `trace_lint` accepts and `trace stitch` can merge with other nodes'
//! dumps, so the evidence for an incident survives the incident.
//!
//! Because the ring is bounded, a snapshot can catch span trees half
//! evicted or half written. The dump therefore runs a well-formedness
//! pass over the seq-ordered events: `span_end`s whose start was
//! overwritten are dropped, still-open spans are closed with a
//! synthesized `span_end` carrying `"truncated":true`, and unpaired
//! `svc_request`/`svc_response` halves are dropped. The pass makes every
//! dump a valid stream, not a best-effort fragment.
//!
//! [`sample_keep`] is the companion tail-sampling primitive: a pure,
//! deterministic keep/drop decision on the trace id, so every node in a
//! fleet keeps or drops the *same* traces without coordination and
//! `trace stitch` never sees a request with half its nodes missing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::Value;

use crate::event::TraceEvent;
use crate::recorder::Recorder;

/// Default ring capacity per node, overridable via `MINOBS_FLIGHT_EVENTS`.
pub const DEFAULT_FLIGHT_EVENTS: usize = 65_536;

/// Shard count: small enough that `dump` holding every lock is cheap,
/// large enough that concurrent workers rarely collide on one mutex.
const SHARDS: usize = 8;

/// One shard's ring: fixed slots plus a write cursor.
#[derive(Debug)]
struct Ring {
    slots: Vec<Option<(u64, TraceEvent)>>,
    next: usize,
}

#[derive(Debug)]
struct Inner {
    seq: AtomicU64,
    shards: Vec<Mutex<Ring>>,
    /// Stamped on every dumped line, like `JsonlSink::set_node_id`.
    node_id: Option<String>,
    /// Recorded into each dump's `flight_dump` header so offline tooling
    /// knows whether the stream behind the ring was tail-sampled.
    sampled: bool,
}

/// Statistics and rendered JSONL from one [`FlightRecorder::dump`].
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// The dump: one `minobs/trace/v1` object per line, headed by a
    /// `flight_dump` meta line.
    pub jsonl: String,
    /// Event lines kept (header excluded).
    pub events: u64,
    /// Events discarded by the well-formedness pass.
    pub dropped: u64,
    /// Synthesized `span_end`s for spans still open at snapshot time.
    pub truncated: u64,
}

/// A cloneable handle to a shared flight-recorder ring.
///
/// Clones share the ring, so one clone can sit inside a
/// [`crate::TeeRecorder`] on the hot path while another serves `dump`
/// requests from a control thread.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl FlightRecorder {
    /// A ring holding at most `capacity` events (clamped to ≥ [`SHARDS`]),
    /// with no node stamp and sampling reported off.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder::with_meta(capacity, None, false)
    }

    /// A ring that stamps `node_id` on dumped lines and reports `sampled`
    /// in every dump header.
    pub fn with_meta(
        capacity: usize,
        node_id: Option<String>,
        sampled: bool,
    ) -> FlightRecorder {
        let per_shard = capacity.max(SHARDS).div_ceil(SHARDS);
        let shards = (0..SHARDS)
            .map(|_| {
                Mutex::new(Ring {
                    slots: vec![None; per_shard],
                    next: 0,
                })
            })
            .collect();
        FlightRecorder {
            inner: Arc::new(Inner {
                seq: AtomicU64::new(0),
                shards,
                node_id: node_id.filter(|id| !id.is_empty()),
                sampled,
            }),
        }
    }

    /// Total ring capacity in events.
    pub fn capacity(&self) -> usize {
        SHARDS * lock(&self.inner.shards[0]).slots.len()
    }

    /// Events recorded over the ring's lifetime (not the retained count).
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    fn push_at(&self, seq: u64, event: TraceEvent) {
        let mut ring = lock(&self.inner.shards[(seq as usize) % SHARDS]);
        let at = ring.next;
        ring.slots[at] = Some((seq, event));
        ring.next = (at + 1) % ring.slots.len();
    }

    /// Records one event.
    pub fn push(&self, event: TraceEvent) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.push_at(seq, event);
    }

    /// Records a block of events under one contiguous seq range, so a
    /// request's span tree stays un-interleaved with concurrent blocks
    /// when the dump re-sorts by seq.
    pub fn push_block(&self, events: &[TraceEvent]) {
        let base = self
            .inner
            .seq
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        for (offset, event) in events.iter().enumerate() {
            self.push_at(base + offset as u64, event.clone());
        }
    }

    /// Snapshots the ring into well-formed `minobs/trace/v1` JSONL.
    ///
    /// Acquires every shard lock in index order (writers only ever hold
    /// one, so this cannot deadlock), sorts the retained events by seq,
    /// then repairs ring-truncation damage: orphan `span_end`s and
    /// unpaired `svc_request`/`svc_response` halves are dropped, and
    /// spans still open at the end are closed with synthesized ends
    /// marked `"truncated":true`.
    pub fn dump(&self, reason: &str) -> FlightSnapshot {
        let mut entries: Vec<(u64, TraceEvent)> = Vec::new();
        {
            let guards: Vec<_> = self.inner.shards.iter().map(lock).collect();
            for guard in &guards {
                entries.extend(guard.slots.iter().flatten().cloned());
            }
        }
        entries.sort_by_key(|(seq, _)| *seq);

        // Pass 1: svc request/response pairing. Responses follow their
        // requests, so eviction can orphan either half; keep only seqs
        // present as a full pair.
        let mut req_seqs = std::collections::HashSet::new();
        let mut resp_seqs = std::collections::HashSet::new();
        for (_, event) in &entries {
            match event {
                TraceEvent::SvcRequest { seq, .. } => {
                    req_seqs.insert(*seq);
                }
                TraceEvent::SvcResponse { seq, .. } => {
                    resp_seqs.insert(*seq);
                }
                _ => {}
            }
        }

        // Pass 2: span bracketing over the seq-ordered stream. Blocks
        // recorded via `push_block` are contiguous, so a single stack
        // sees properly nested spans; an end with no matching open start
        // lost its start to eviction.
        let mut lines: Vec<Value> = Vec::new();
        let mut open: Vec<(u64, String)> = Vec::new();
        let mut dropped = 0u64;
        for (_, event) in &entries {
            match event {
                TraceEvent::SpanStart { span_id, name, .. } => {
                    open.push((*span_id, name.clone()));
                    lines.push(event.to_json());
                }
                TraceEvent::SpanEnd { span_id, name, .. } => {
                    if open
                        .last()
                        .is_some_and(|(id, n)| id == span_id && n == name)
                    {
                        open.pop();
                        lines.push(event.to_json());
                    } else {
                        dropped += 1;
                    }
                }
                TraceEvent::SvcRequest { seq, .. } if !resp_seqs.contains(seq) => {
                    dropped += 1;
                }
                TraceEvent::SvcResponse { seq, .. } if !req_seqs.contains(seq) => {
                    dropped += 1;
                }
                _ => lines.push(event.to_json()),
            }
        }
        // Spans still open when the ring was snapshotted: close them
        // innermost-first with synthesized, explicitly-truncated ends so
        // the dump stays bracketed without inventing durations.
        let truncated = open.len() as u64;
        for (span_id, name) in open.into_iter().rev() {
            let mut end = TraceEvent::SpanEnd {
                round: 0,
                span_id,
                name,
                nanos: 0,
            }
            .to_json();
            if let Value::Object(map) = &mut end {
                map.insert("truncated".to_string(), Value::from(true));
            }
            lines.push(end);
        }

        let events = lines.len() as u64;
        let header = TraceEvent::FlightDump {
            reason: reason.to_string(),
            events,
            dropped,
            truncated,
            sampled: self.inner.sampled,
        }
        .to_json();
        let mut jsonl = String::new();
        for mut line in std::iter::once(header).chain(lines) {
            if let (Some(node_id), Value::Object(map)) = (&self.inner.node_id, &mut line) {
                map.insert("node_id".to_string(), Value::from(node_id.as_str()));
            }
            jsonl.push_str(&serde_json::to_string(&line).unwrap_or_default());
            jsonl.push('\n');
        }
        FlightSnapshot {
            jsonl,
            events,
            dropped,
            truncated,
        }
    }
}

/// The hot-path integration: every event the tee forwards lands in the
/// ring via the `record` funnel.
impl Recorder for FlightRecorder {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.push(event);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The deterministic tail-sampling keep decision for an unremarkable
/// trace: `true` iff `trace_id` hashes under the `sample` fraction of
/// the 64-bit space.
///
/// The decision is a pure function of the trace id (finalizer-mixed so
/// sequential ids spread uniformly), which is what makes independent
/// per-node decisions fleet-consistent: every node that sees a span of
/// trace `T` computes the same verdict, so a kept trace is kept whole
/// across the cluster and a dropped one vanishes everywhere.
pub fn sample_keep(trace_id: u128, sample: f64) -> bool {
    if sample >= 1.0 {
        return true;
    }
    if sample <= 0.0 {
        return false;
    }
    let mut x = (trace_id as u64) ^ ((trace_id >> 64) as u64);
    // splitmix64-style avalanche: every input bit affects every output bit.
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    // Compare in integer space: sample of the full u64 range, no float
    // rounding at the boundary.
    (x as f64) < sample * (u64::MAX as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MessageStatus;

    fn parse(jsonl: &str) -> Vec<Value> {
        jsonl
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect()
    }

    #[test]
    fn dump_is_headed_and_ordered() {
        let flight = FlightRecorder::new(64);
        let mut flight_rec = flight.clone();
        flight_rec.on_svc_request(1, "stats");
        flight_rec.on_svc_response(1, "stats", true, "none", 10);
        let snap = flight.dump("rpc");
        let lines = parse(&snap.jsonl);
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0].get("event").and_then(Value::as_str),
            Some("flight_dump")
        );
        assert_eq!(lines[0].get("reason").and_then(Value::as_str), Some("rpc"));
        assert_eq!(lines[0].get("events").and_then(Value::as_u64), Some(2));
        assert_eq!(snap.events, 2);
        assert_eq!((snap.dropped, snap.truncated), (0, 0));
    }

    #[test]
    fn ring_overwrites_oldest_and_reports_capacity() {
        let flight = FlightRecorder::new(16);
        assert_eq!(flight.capacity(), 16);
        for round in 0..100 {
            flight.push(TraceEvent::Message {
                round,
                from: 0,
                to: 1,
                status: MessageStatus::Delivered,
            });
        }
        assert_eq!(flight.recorded(), 100);
        let snap = flight.dump("rpc");
        assert_eq!(snap.events, 16);
        let lines = parse(&snap.jsonl);
        // Only the newest 16 survive, still in emission order.
        let rounds: Vec<u64> = lines[1..]
            .iter()
            .map(|l| l.get("round").and_then(Value::as_u64).unwrap())
            .collect();
        assert_eq!(rounds, (84..100).collect::<Vec<u64>>());
    }

    #[test]
    fn open_spans_get_synthesized_truncated_ends() {
        let flight = FlightRecorder::new(64);
        flight.push_block(&[
            TraceEvent::SpanStart {
                round: 0,
                span_id: 7,
                parent: None,
                name: "rpc.check".to_string(),
                trace_id: Some(0xabc),
                ctx_parent: None,
            },
            TraceEvent::SpanStart {
                round: 0,
                span_id: 8,
                parent: Some(7),
                name: "check.eval".to_string(),
                trace_id: None,
                ctx_parent: None,
            },
        ]);
        let snap = flight.dump("panic");
        assert_eq!(snap.truncated, 2);
        let lines = parse(&snap.jsonl);
        // Innermost closes first, so the dump stays properly bracketed.
        let tail: Vec<(&str, u64, bool)> = lines[3..]
            .iter()
            .map(|l| {
                (
                    l.get("name").and_then(Value::as_str).unwrap(),
                    l.get("span_id").and_then(Value::as_u64).unwrap(),
                    l.get("truncated").and_then(Value::as_bool).unwrap(),
                )
            })
            .collect();
        assert_eq!(tail, vec![("check.eval", 8, true), ("rpc.check", 7, true)]);
    }

    #[test]
    fn orphan_span_ends_and_unpaired_svc_halves_are_dropped() {
        let flight = FlightRecorder::new(64);
        let mut rec = flight.clone();
        // An end whose start was (notionally) evicted.
        rec.on_span_end(0, 99, "lost", 5);
        // A request whose response never arrived, and vice versa.
        rec.on_svc_request(1, "stats");
        rec.on_svc_response(2, "stats", true, "none", 3);
        let snap = flight.dump("rpc");
        assert_eq!(snap.events, 0);
        assert_eq!(snap.dropped, 3);
    }

    #[test]
    fn eviction_of_a_span_start_drops_its_end() {
        // Capacity 8: one balanced pair recorded early gets half evicted
        // by later traffic; the dump must not keep the dangling end.
        let flight = FlightRecorder::new(8);
        let mut rec = flight.clone();
        rec.on_span_start(0, 1, None, "early");
        for round in 0..7 {
            rec.on_message(round, 0, 1, MessageStatus::Delivered);
        }
        // The start is now the oldest slot; two more events evict it
        // (shard rings overwrite their own oldest residue class).
        rec.on_span_end(0, 1, "early", 10);
        for round in 7..20 {
            rec.on_message(round, 0, 1, MessageStatus::Delivered);
        }
        let snap = flight.dump("rpc");
        let lines = parse(&snap.jsonl);
        for line in &lines[1..] {
            assert_ne!(
                line.get("event").and_then(Value::as_str),
                Some("span_end"),
                "dangling span_end survived: {line:?}"
            );
        }
    }

    #[test]
    fn dump_stamps_node_id_and_sampled_flag() {
        let flight = FlightRecorder::with_meta(32, Some("127.0.0.1:7400".to_string()), true);
        flight.push(TraceEvent::Health {
            status: "ok".to_string(),
            ready: true,
            live: true,
        });
        let lines = parse(&flight.dump("health_edge").jsonl);
        for line in &lines {
            assert_eq!(
                line.get("node_id").and_then(Value::as_str),
                Some("127.0.0.1:7400")
            );
        }
        assert_eq!(lines[0].get("sampled").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn sample_keep_is_deterministic_and_roughly_proportional() {
        let sample = 0.25;
        let kept: Vec<u128> = (0..4000u128).filter(|&id| sample_keep(id, sample)).collect();
        // Deterministic: the same ids are kept on a "second node".
        let again: Vec<u128> = (0..4000u128).filter(|&id| sample_keep(id, sample)).collect();
        assert_eq!(kept, again);
        // Roughly a quarter of sequential ids survive the mixed hash.
        let frac = kept.len() as f64 / 4000.0;
        assert!((0.18..0.32).contains(&frac), "kept fraction {frac}");
        // Degenerate rates short-circuit.
        assert!(sample_keep(42, 1.0));
        assert!(!sample_keep(42, 0.0));
    }

    #[test]
    fn concurrent_dump_during_heavy_recording_never_tears_a_block() {
        let flight = FlightRecorder::new(256);
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let flight = flight.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let span_id = w * 10_000 + i;
                        flight.push_block(&[
                            TraceEvent::SpanStart {
                                round: 0,
                                span_id,
                                parent: None,
                                name: format!("worker{w}"),
                                trace_id: None,
                                ctx_parent: None,
                            },
                            TraceEvent::SpanEnd {
                                round: 0,
                                span_id,
                                name: format!("worker{w}"),
                                nanos: 1,
                            },
                        ]);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            let snap = flight.dump("rpc");
            // Every dump taken mid-storm is balanced: starts and kept
            // ends pair off, possibly with synthesized closers.
            let lines = parse(&snap.jsonl);
            let mut depth = 0i64;
            for line in &lines[1..] {
                match line.get("event").and_then(Value::as_str) {
                    Some("span_start") => depth += 1,
                    Some("span_end") => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "dump closed more spans than it opened");
            }
            assert_eq!(depth, 0, "dump left spans unbalanced");
        }
        for writer in writers {
            writer.join().unwrap();
        }
    }
}
