//! Streaming JSONL export of the trace event stream.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::event::TraceEvent;
use crate::recorder::Recorder;

/// A [`Recorder`] that writes one JSON object per line to any writer.
///
/// Lines follow the versioned schema described in
/// `docs/OBSERVABILITY.md`: every object carries `schema`, `event`, and
/// `round`. I/O errors are reported to stderr once and the sink goes
/// quiet rather than panicking mid-run.
pub struct JsonlSink<W: Write> {
    // `Option` only so `into_inner` can move the writer out past `Drop`.
    writer: Option<W>,
    lines: u64,
    failed: bool,
    /// When set, every emitted line gains a `node_id` field — the stable
    /// node identity `trace stitch` groups multi-node streams by.
    node_id: Option<String>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (or truncates) `path`, creating parent directories.
    pub fn create(path: &Path) -> io::Result<JsonlSink<BufWriter<File>>> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Some(writer),
            lines: 0,
            failed: false,
            node_id: None,
        }
    }

    /// Stamps `node_id` onto every subsequent line. Empty ids are
    /// ignored — an unstamped stream stays byte-identical to pre-cluster
    /// traces.
    pub fn set_node_id(&mut self, node_id: &str) {
        if !node_id.is_empty() {
            self.node_id = Some(node_id.to_string());
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer.
    pub fn into_inner(mut self) -> W {
        let mut writer = self.writer.take().expect("writer present until drop");
        let _ = writer.flush();
        writer
    }

    /// Flushes buffered lines.
    pub fn flush(&mut self) -> io::Result<()> {
        match self.writer.as_mut() {
            Some(writer) => writer.flush(),
            None => Ok(()),
        }
    }

    fn write_event(&mut self, event: &TraceEvent) {
        if self.failed {
            return;
        }
        let mut json = event.to_json();
        if let (Some(node_id), serde_json::Value::Object(map)) = (&self.node_id, &mut json) {
            map.insert("node_id", serde_json::Value::from(node_id.as_str()));
        }
        let line = match serde_json::to_string(&json) {
            Ok(line) => line,
            Err(err) => {
                eprintln!("minobs-obs: trace serialisation failed: {err}");
                self.failed = true;
                return;
            }
        };
        let writer = self.writer.as_mut().expect("writer present until drop");
        if let Err(err) = writeln!(writer, "{line}") {
            eprintln!("minobs-obs: trace write failed, disabling sink: {err}");
            self.failed = true;
            return;
        }
        self.lines += 1;
    }
}

impl<W: Write> Recorder for JsonlSink<W> {
    fn record(&mut self, event: TraceEvent) {
        self.write_event(&event);
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

/// Resolves the trace path requested via the `MINOBS_TRACE` environment
/// variable, if any.
///
/// * unset, empty, or `0` → `None` (tracing off);
/// * `1`, `true`, `on` → `Some(default)`;
/// * anything else → `Some(that value as a path)`.
pub fn trace_path_from_env(default: &Path) -> Option<PathBuf> {
    resolve_trace_value(&std::env::var("MINOBS_TRACE").ok()?, default)
}

/// The pure spelling rules behind [`trace_path_from_env`].
pub fn resolve_trace_value(value: &str, default: &Path) -> Option<PathBuf> {
    match value {
        "" | "0" => None,
        "1" | "true" | "on" => Some(default.to_path_buf()),
        path => Some(PathBuf::from(path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MessageStatus, RoundCounts};
    use serde_json::Value;

    #[test]
    fn writes_one_parseable_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_run_start("network", 4, 1);
        sink.on_message(0, 1, 2, MessageStatus::Delivered);
        sink.on_round_end(0, RoundCounts::default(), 0);
        sink.on_run_end(1, RoundCounts::default(), 0);
        assert_eq!(sink.lines(), 4);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            let value: Value = serde_json::from_str(line).unwrap();
            assert!(value.get("schema").is_some());
            assert!(value.get("event").is_some());
            assert!(value.get("round").is_some());
        }
    }

    #[test]
    fn node_id_stamps_every_line_once_set() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_decision(0, 0, 1);
        sink.set_node_id("127.0.0.1:7400");
        sink.on_decision(0, 1, 1);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<Value> = text
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect();
        assert_eq!(lines[0].get("node_id"), None, "pre-stamp lines unchanged");
        assert_eq!(
            lines[1].get("node_id").and_then(Value::as_str),
            Some("127.0.0.1:7400")
        );
    }

    #[test]
    fn create_writes_through_missing_directories() {
        let dir = std::env::temp_dir().join(format!(
            "minobs-obs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("nested").join("trace.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.on_decision(3, 1, 7);
        }
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"decision\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_spelling_controls_the_path() {
        // Exercises the pure spelling rules; the process-global env var
        // itself is not touched (tests run in parallel).
        let default = Path::new("target/trace.jsonl");
        for (value, expected) in [
            ("0", None),
            ("", None),
            ("1", Some(default.to_path_buf())),
            ("true", Some(default.to_path_buf())),
            ("on", Some(default.to_path_buf())),
            ("custom.jsonl", Some(PathBuf::from("custom.jsonl"))),
        ] {
            assert_eq!(resolve_trace_value(value, default), expected, "value {value:?}");
        }
    }
}
