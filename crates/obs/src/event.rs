//! The structured trace event model and its JSON mapping.
//!
//! Every event serialises to one JSON object carrying at least the three
//! stable fields `schema`, `event`, and `round`, so downstream tooling can
//! filter a mixed JSONL stream without knowing every variant. The schema
//! string is versioned ([`SCHEMA`]); additive changes keep the version,
//! field renames or removals bump it.

use serde_json::{Map, Value};

/// Version tag stamped on every emitted event line.
pub const SCHEMA: &str = "minobs/trace/v1";

/// What happened to a single message in a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageStatus {
    /// Routed to its addressee this round.
    Delivered,
    /// Selected by the adversary's omission set.
    Dropped,
    /// Addressed to a non-neighbor and discarded before routing.
    Misaddressed,
}

impl MessageStatus {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            MessageStatus::Delivered => "delivered",
            MessageStatus::Dropped => "dropped",
            MessageStatus::Misaddressed => "misaddressed",
        }
    }
}

/// Per-round (or whole-run) message accounting.
///
/// The engines count a send as `sent` only when it is addressed to a live
/// neighbor; misaddressed sends are tallied separately and never enter
/// `sent`. The conservation invariant is therefore
/// `sent == delivered + dropped`, checked by the engines each round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundCounts {
    /// Valid messages handed to the network.
    pub sent: usize,
    /// Messages routed to their addressee.
    pub delivered: usize,
    /// Messages removed by the adversary.
    pub dropped: usize,
    /// Messages to non-neighbors, discarded before routing.
    pub misaddressed: usize,
}

impl RoundCounts {
    /// Accumulates another round's counts into a running total.
    pub fn absorb(&mut self, other: RoundCounts) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.misaddressed += other.misaddressed;
    }
}

/// One structured observation from an engine or the model checker.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A run began. `round` is always 0.
    RunStart {
        /// Which execution surface: `"two_process"`, `"network"`,
        /// `"network_parallel"`, `"checker"`, or `"checker_parallel"`.
        engine: &'static str,
        /// Number of participating processes (2 for the two-process engine).
        nodes: usize,
        /// Worker threads (1 for the serial engines).
        threads: usize,
    },
    /// A single message's fate within a round.
    Message {
        /// Round the message was sent in (0-based).
        round: usize,
        /// Sender node id.
        from: usize,
        /// Addressee node id.
        to: usize,
        /// Delivered, dropped, or misaddressed.
        status: MessageStatus,
    },
    /// A node committed to a decision this round.
    Decision {
        /// Round the decision became visible (0-based).
        round: usize,
        /// Deciding node id.
        node: usize,
        /// The decided value.
        value: u64,
    },
    /// A round completed, with its message accounting.
    RoundEnd {
        /// The completed round (0-based).
        round: usize,
        /// Message accounting for exactly this round.
        counts: RoundCounts,
        /// Wall-clock nanoseconds the round took (0 when timing is off).
        nanos: u64,
    },
    /// A named timed section inside a run.
    Span {
        /// Round the span is attributed to.
        round: usize,
        /// Section name, e.g. `"adversary_select"`.
        name: String,
        /// Wall-clock nanoseconds.
        nanos: u64,
    },
    /// A profiling span opened. Closed by the [`TraceEvent::SpanEnd`]
    /// carrying the same `span_id`; spans nest properly per stream.
    SpanStart {
        /// Round the span is attributed to.
        round: usize,
        /// Monotone identifier, unique within the emitting run (see
        /// [`crate::SpanIds`]; runless daemon traces carve disjoint
        /// per-request blocks, making ids stream-unique there).
        span_id: u64,
        /// `span_id` of the enclosing open span, if any.
        parent: Option<u64>,
        /// Stable section name, e.g. `"checker_expand"`.
        name: String,
        /// Distributed trace id this span belongs to, when the request
        /// carried a [`crate::TraceContext`]. Serialised as 32 lowercase
        /// hex digits; absent on purely local spans.
        trace_id: Option<u128>,
        /// Span id on the *sending* node this root span is parented
        /// under. Only meaningful together with `trace_id`; resolved by
        /// `trace stitch`, never by in-process tooling (the local
        /// `parent` chain stays self-contained).
        ctx_parent: Option<u64>,
    },
    /// A profiling span closed, with its measured duration.
    SpanEnd {
        /// Round the span is attributed to.
        round: usize,
        /// Identifier of the span being closed.
        span_id: u64,
        /// Section name, echoed from the matching start.
        name: String,
        /// Wall-clock nanoseconds between start and end (never 0 when the
        /// span was actually timed).
        nanos: u64,
    },
    /// Periodic heartbeat from a long model-checker sweep: cumulative
    /// work so far, emitted each time the explored-state count crosses
    /// another stride so multi-minute runs stay watchable.
    CheckerProgress {
        /// Frontier depth at the heartbeat (1-based, matches
        /// `checker_round`).
        round: usize,
        /// Execution states currently in the frontier.
        frontier: usize,
        /// Cumulative execution states explored so far.
        states: usize,
    },
    /// One level-synchronous frontier step of the bounded model checker.
    CheckerRound {
        /// Prefix length just explored (1-based, matches horizon depth).
        round: usize,
        /// Execution states in the frontier after this step.
        frontier: usize,
        /// Total interned views in the arena so far.
        views: usize,
        /// Wall-clock nanoseconds for this step (0 when timing is off).
        nanos: u64,
    },
    /// A full horizon check finished (one `k` of `first_solvable_horizon`).
    Horizon {
        /// The horizon depth checked.
        horizon: usize,
        /// Whether the task is solvable within that horizon.
        solvable: bool,
        /// Wall-clock nanoseconds for the whole check (0 when timing is off).
        nanos: u64,
    },
    /// A parallel engine worker panicked and its shard was re-executed
    /// serially by the coordinator — the run degraded instead of aborting.
    EngineDegraded {
        /// Round in which the worker panicked (0-based).
        round: usize,
        /// Which phase degraded: `"send"` or `"advance"`.
        phase: &'static str,
        /// Index of the affected worker shard.
        shard: usize,
    },
    /// The model checker stopped early because its state or wall-clock
    /// budget ran out; the result is partial.
    BudgetExhausted {
        /// Deepest fully-explored horizon (rounds completed).
        horizon: usize,
        /// Frontier size at the moment the budget ran out.
        frontier: usize,
        /// Cumulative execution states explored before stopping.
        states: usize,
    },
    /// A run finished, with totals over all rounds.
    RunEnd {
        /// Rounds executed.
        rounds: usize,
        /// Whole-run message accounting.
        totals: RoundCounts,
        /// Wall-clock nanoseconds for the run (0 when timing is off).
        nanos: u64,
    },
    /// The solvability service accepted a request. `round` is always 0;
    /// `seq` is the daemon-wide accept sequence number, unique per
    /// request and echoed by the matching [`TraceEvent::SvcResponse`].
    SvcRequest {
        /// Daemon-wide accept sequence number.
        seq: u64,
        /// RPC method name, e.g. `"check_horizon"`.
        method: String,
    },
    /// The solvability service finished a request. `round` is always 0.
    SvcResponse {
        /// Accept sequence number of the request being answered.
        seq: u64,
        /// RPC method name, echoed from the request.
        method: String,
        /// Whether the request succeeded (an RPC-level error is `false`).
        ok: bool,
        /// Verdict-cache disposition: `"hit"`, `"miss"`, `"subsumed"`,
        /// or `"none"` for methods that bypass the cache.
        cache: &'static str,
        /// Wall-clock nanoseconds from dequeue to response.
        nanos: u64,
    },
    /// The daemon appended one record to the write-ahead verdict log
    /// (`minobs/wal/v1`). `round` is always 0.
    WalAppend {
        /// Record operation: `"horizon"`, `"theorem"`, or `"snapshot"`.
        op: &'static str,
        /// Canonical cache key of the verdict persisted.
        key: String,
        /// Encoded record size on disk, framing included.
        bytes: u64,
    },
    /// The daemon replayed the write-ahead verdict log at startup.
    /// `round` is always 0.
    WalReplay {
        /// Records applied to the cache.
        records: u64,
        /// Bytes of valid log consumed.
        bytes: u64,
        /// Whether a torn or checksum-failing tail was dropped.
        dropped_tail: bool,
    },
    /// The write-ahead log failed and the daemon degraded to memory-only
    /// persistence; mirrored by the `svc.wal_degraded` gauge. `round` is
    /// always 0.
    WalDegraded {
        /// The I/O error that forced degradation.
        error: String,
    },
    /// One anti-entropy gossip exchange with a peer finished. `round` is
    /// always 0.
    GossipRound {
        /// Peer address gossiped with, e.g. `"127.0.0.1:7401"`.
        peer: String,
        /// Deltas shipped to the peer this exchange.
        sent: u64,
        /// Deltas received from the peer this exchange.
        received: u64,
        /// Wall-clock nanoseconds for the whole exchange (0 when timing
        /// is off).
        nanos: u64,
    },
    /// One replicated delta was ingested from a peer. `round` is always 0.
    GossipApply {
        /// Peer address the delta arrived from.
        peer: String,
        /// Record operation replicated: `"horizon"` or `"theorem"`.
        op: &'static str,
        /// Canonical cache key of the replicated verdict.
        key: String,
        /// `false` when cross-validation rejected the delta (a would-be
        /// contradiction from a hostile or corrupt peer).
        accepted: bool,
    },
    /// A peer stopped answering gossip and was marked down. `round` is
    /// always 0.
    PeerDown {
        /// Address of the unresponsive peer.
        peer: String,
        /// Consecutive failed exchanges at the moment of marking.
        failures: u64,
    },
    /// The daemon's health verdict changed (edge-triggered: emitted on
    /// every flip, not every evaluation). `round` is always 0.
    Health {
        /// Overall status: `"ok"` or `"degraded"`.
        status: String,
        /// Whether the node should receive traffic (queue has headroom,
        /// not draining, not cut off from all peers).
        ready: bool,
        /// Whether the process is up at all (always `true` from a
        /// running daemon; the field exists so probes share one shape).
        live: bool,
    },
    /// A flight-recorder ring was snapshotted into a trace dump. Emitted
    /// as the first line of every dump so tooling can tell a bounded
    /// retrospective capture from a complete stream. `round` is always 0.
    FlightDump {
        /// What triggered the dump: `"rpc"`, `"wal_degraded"`,
        /// `"peer_down"`, `"health_edge"`, or `"panic"`.
        reason: String,
        /// Events in the dump after the well-formedness pass.
        events: u64,
        /// Events discarded by the pass (ends whose start was evicted,
        /// unpaired request/response halves).
        dropped: u64,
        /// Still-open spans closed with a synthesized, `truncated:true`
        /// span_end.
        truncated: u64,
        /// Whether the stream behind this dump was tail-sampled (so
        /// coverage checks must not expect every request).
        sampled: bool,
    },
    /// Tail-based trace sampling is active on this stream. Written once
    /// at sink start so offline tooling (`trace profile`) knows dropped
    /// requests are policy, not data loss. `round` is always 0.
    TraceSampled {
        /// Keep probability for unremarkable traces, in `[0, 1]`.
        sample: f64,
        /// Root spans at or above this many milliseconds are always kept.
        slow_ms: u64,
    },
}

impl TraceEvent {
    /// Stable wire name of the variant.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::Message { .. } => "message",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::Span { .. } => "span",
            TraceEvent::SpanStart { .. } => "span_start",
            TraceEvent::SpanEnd { .. } => "span_end",
            TraceEvent::CheckerProgress { .. } => "checker_progress",
            TraceEvent::CheckerRound { .. } => "checker_round",
            TraceEvent::Horizon { .. } => "horizon",
            TraceEvent::EngineDegraded { .. } => "engine_degraded",
            TraceEvent::BudgetExhausted { .. } => "budget_exhausted",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::SvcRequest { .. } => "svc_request",
            TraceEvent::SvcResponse { .. } => "svc_response",
            TraceEvent::WalAppend { .. } => "wal_append",
            TraceEvent::WalReplay { .. } => "wal_replay",
            TraceEvent::WalDegraded { .. } => "wal_degraded",
            TraceEvent::GossipRound { .. } => "gossip_round",
            TraceEvent::GossipApply { .. } => "gossip_apply",
            TraceEvent::PeerDown { .. } => "peer_down",
            TraceEvent::Health { .. } => "health",
            TraceEvent::FlightDump { .. } => "flight_dump",
            TraceEvent::TraceSampled { .. } => "trace_sampled",
        }
    }

    /// The round the event is attributed to (`horizon` for horizon events,
    /// total `rounds` for run ends).
    pub fn round(&self) -> usize {
        match *self {
            TraceEvent::RunStart { .. }
            | TraceEvent::SvcRequest { .. }
            | TraceEvent::SvcResponse { .. }
            | TraceEvent::WalAppend { .. }
            | TraceEvent::WalReplay { .. }
            | TraceEvent::WalDegraded { .. }
            | TraceEvent::GossipRound { .. }
            | TraceEvent::GossipApply { .. }
            | TraceEvent::PeerDown { .. }
            | TraceEvent::Health { .. }
            | TraceEvent::FlightDump { .. }
            | TraceEvent::TraceSampled { .. } => 0,
            TraceEvent::Message { round, .. }
            | TraceEvent::Decision { round, .. }
            | TraceEvent::RoundEnd { round, .. }
            | TraceEvent::Span { round, .. }
            | TraceEvent::SpanStart { round, .. }
            | TraceEvent::SpanEnd { round, .. }
            | TraceEvent::CheckerProgress { round, .. }
            | TraceEvent::CheckerRound { round, .. }
            | TraceEvent::EngineDegraded { round, .. } => round,
            TraceEvent::Horizon { horizon, .. } | TraceEvent::BudgetExhausted { horizon, .. } => {
                horizon
            }
            TraceEvent::RunEnd { rounds, .. } => rounds,
        }
    }

    /// Serialises to the versioned JSON object for one JSONL line.
    ///
    /// Every object carries `schema`, `event`, and `round`; the remaining
    /// fields are variant-specific.
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("schema".to_string(), Value::from(SCHEMA));
        map.insert("event".to_string(), Value::from(self.kind()));
        map.insert("round".to_string(), Value::from(self.round() as u64));
        match self {
            TraceEvent::RunStart {
                engine,
                nodes,
                threads,
            } => {
                map.insert("engine".to_string(), Value::from(*engine));
                map.insert("nodes".to_string(), Value::from(*nodes as u64));
                map.insert("threads".to_string(), Value::from(*threads as u64));
            }
            TraceEvent::Message {
                from, to, status, ..
            } => {
                map.insert("from".to_string(), Value::from(*from as u64));
                map.insert("to".to_string(), Value::from(*to as u64));
                map.insert("status".to_string(), Value::from(status.as_str()));
            }
            TraceEvent::Decision { node, value, .. } => {
                map.insert("node".to_string(), Value::from(*node as u64));
                map.insert("value".to_string(), Value::from(*value));
            }
            TraceEvent::RoundEnd { counts, nanos, .. } => {
                insert_counts(&mut map, *counts);
                map.insert("nanos".to_string(), Value::from(*nanos));
            }
            TraceEvent::Span { name, nanos, .. } => {
                map.insert("name".to_string(), Value::from(name.as_str()));
                map.insert("nanos".to_string(), Value::from(*nanos));
            }
            TraceEvent::SpanStart {
                span_id,
                parent,
                name,
                trace_id,
                ctx_parent,
                ..
            } => {
                map.insert("span_id".to_string(), Value::from(*span_id));
                map.insert(
                    "parent".to_string(),
                    parent.map_or(Value::Null, Value::from),
                );
                map.insert("name".to_string(), Value::from(name.as_str()));
                // Additive distributed-tracing fields: only present when
                // the request carried a context, so uninstrumented
                // streams are byte-identical to pre-ctx traces.
                if let Some(id) = trace_id {
                    map.insert("trace_id".to_string(), Value::from(format!("{id:032x}")));
                }
                if let Some(ctx_parent) = ctx_parent {
                    map.insert("ctx_parent".to_string(), Value::from(*ctx_parent));
                }
            }
            TraceEvent::SpanEnd {
                span_id,
                name,
                nanos,
                ..
            } => {
                map.insert("span_id".to_string(), Value::from(*span_id));
                map.insert("name".to_string(), Value::from(name.as_str()));
                map.insert("nanos".to_string(), Value::from(*nanos));
            }
            TraceEvent::CheckerProgress {
                frontier, states, ..
            } => {
                map.insert("frontier".to_string(), Value::from(*frontier as u64));
                map.insert("states".to_string(), Value::from(*states as u64));
            }
            TraceEvent::CheckerRound {
                frontier,
                views,
                nanos,
                ..
            } => {
                map.insert("frontier".to_string(), Value::from(*frontier as u64));
                map.insert("views".to_string(), Value::from(*views as u64));
                map.insert("nanos".to_string(), Value::from(*nanos));
            }
            TraceEvent::Horizon {
                solvable, nanos, ..
            } => {
                map.insert("solvable".to_string(), Value::from(*solvable));
                map.insert("nanos".to_string(), Value::from(*nanos));
            }
            TraceEvent::EngineDegraded { phase, shard, .. } => {
                map.insert("phase".to_string(), Value::from(*phase));
                map.insert("shard".to_string(), Value::from(*shard as u64));
            }
            TraceEvent::BudgetExhausted {
                frontier, states, ..
            } => {
                map.insert("frontier".to_string(), Value::from(*frontier as u64));
                map.insert("states".to_string(), Value::from(*states as u64));
            }
            TraceEvent::RunEnd { totals, nanos, .. } => {
                insert_counts(&mut map, *totals);
                map.insert("nanos".to_string(), Value::from(*nanos));
            }
            TraceEvent::SvcRequest { seq, method } => {
                map.insert("seq".to_string(), Value::from(*seq));
                map.insert("method".to_string(), Value::from(method.as_str()));
            }
            TraceEvent::SvcResponse {
                seq,
                method,
                ok,
                cache,
                nanos,
            } => {
                map.insert("seq".to_string(), Value::from(*seq));
                map.insert("method".to_string(), Value::from(method.as_str()));
                map.insert("ok".to_string(), Value::from(*ok));
                map.insert("cache".to_string(), Value::from(*cache));
                map.insert("nanos".to_string(), Value::from(*nanos));
            }
            TraceEvent::WalAppend { op, key, bytes } => {
                map.insert("op".to_string(), Value::from(*op));
                map.insert("key".to_string(), Value::from(key.as_str()));
                map.insert("bytes".to_string(), Value::from(*bytes));
            }
            TraceEvent::WalReplay {
                records,
                bytes,
                dropped_tail,
            } => {
                map.insert("records".to_string(), Value::from(*records));
                map.insert("bytes".to_string(), Value::from(*bytes));
                map.insert("dropped_tail".to_string(), Value::from(*dropped_tail));
            }
            TraceEvent::WalDegraded { error } => {
                map.insert("error".to_string(), Value::from(error.as_str()));
            }
            TraceEvent::GossipRound {
                peer,
                sent,
                received,
                nanos,
            } => {
                map.insert("peer".to_string(), Value::from(peer.as_str()));
                map.insert("sent".to_string(), Value::from(*sent));
                map.insert("received".to_string(), Value::from(*received));
                map.insert("nanos".to_string(), Value::from(*nanos));
            }
            TraceEvent::GossipApply {
                peer,
                op,
                key,
                accepted,
            } => {
                map.insert("peer".to_string(), Value::from(peer.as_str()));
                map.insert("op".to_string(), Value::from(*op));
                map.insert("key".to_string(), Value::from(key.as_str()));
                map.insert("accepted".to_string(), Value::from(*accepted));
            }
            TraceEvent::PeerDown { peer, failures } => {
                map.insert("peer".to_string(), Value::from(peer.as_str()));
                map.insert("failures".to_string(), Value::from(*failures));
            }
            TraceEvent::Health { status, ready, live } => {
                map.insert("status".to_string(), Value::from(status.as_str()));
                map.insert("ready".to_string(), Value::from(*ready));
                map.insert("live".to_string(), Value::from(*live));
            }
            TraceEvent::FlightDump {
                reason,
                events,
                dropped,
                truncated,
                sampled,
            } => {
                map.insert("reason".to_string(), Value::from(reason.as_str()));
                map.insert("events".to_string(), Value::from(*events));
                map.insert("dropped".to_string(), Value::from(*dropped));
                map.insert("truncated".to_string(), Value::from(*truncated));
                map.insert("sampled".to_string(), Value::from(*sampled));
            }
            TraceEvent::TraceSampled { sample, slow_ms } => {
                map.insert("sample".to_string(), Value::from(*sample));
                map.insert("slow_ms".to_string(), Value::from(*slow_ms));
            }
        }
        Value::Object(map)
    }
}

fn insert_counts(map: &mut Map, counts: RoundCounts) {
    map.insert("sent".to_string(), Value::from(counts.sent as u64));
    map.insert("delivered".to_string(), Value::from(counts.delivered as u64));
    map.insert("dropped".to_string(), Value::from(counts.dropped as u64));
    map.insert(
        "misaddressed".to_string(),
        Value::from(counts.misaddressed as u64),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_carries_the_stable_fields() {
        let events = [
            TraceEvent::RunStart {
                engine: "network",
                nodes: 4,
                threads: 1,
            },
            TraceEvent::Message {
                round: 2,
                from: 0,
                to: 1,
                status: MessageStatus::Dropped,
            },
            TraceEvent::Decision {
                round: 3,
                node: 1,
                value: 7,
            },
            TraceEvent::RoundEnd {
                round: 2,
                counts: RoundCounts {
                    sent: 4,
                    delivered: 3,
                    dropped: 1,
                    misaddressed: 0,
                },
                nanos: 10,
            },
            TraceEvent::Span {
                round: 1,
                name: "adversary_select".to_string(),
                nanos: 5,
            },
            TraceEvent::SpanStart {
                round: 1,
                span_id: 0,
                parent: None,
                name: "net_send".to_string(),
                trace_id: Some(0x0af7_6519_16cd_43dd_8448_eb21_1c80_319c),
                ctx_parent: Some(12),
            },
            TraceEvent::SpanEnd {
                round: 1,
                span_id: 0,
                name: "net_send".to_string(),
                nanos: 77,
            },
            TraceEvent::CheckerProgress {
                round: 5,
                frontier: 320,
                states: 8192,
            },
            TraceEvent::CheckerRound {
                round: 1,
                frontier: 9,
                views: 30,
                nanos: 2,
            },
            TraceEvent::Horizon {
                horizon: 3,
                solvable: true,
                nanos: 100,
            },
            TraceEvent::EngineDegraded {
                round: 2,
                phase: "send",
                shard: 1,
            },
            TraceEvent::BudgetExhausted {
                horizon: 4,
                frontier: 120,
                states: 4096,
            },
            TraceEvent::RunEnd {
                rounds: 4,
                totals: RoundCounts::default(),
                nanos: 99,
            },
            TraceEvent::SvcRequest {
                seq: 17,
                method: "check_horizon".to_string(),
            },
            TraceEvent::SvcResponse {
                seq: 17,
                method: "check_horizon".to_string(),
                ok: true,
                cache: "subsumed",
                nanos: 42,
            },
            TraceEvent::WalAppend {
                op: "horizon",
                key: "classic:s1|gamma".to_string(),
                bytes: 64,
            },
            TraceEvent::WalReplay {
                records: 12,
                bytes: 800,
                dropped_tail: true,
            },
            TraceEvent::WalDegraded {
                error: "no space left on device".to_string(),
            },
            TraceEvent::GossipRound {
                peer: "127.0.0.1:7401".to_string(),
                sent: 3,
                received: 2,
                nanos: 55,
            },
            TraceEvent::GossipApply {
                peer: "127.0.0.1:7401".to_string(),
                op: "horizon",
                key: "classic:s1|gamma".to_string(),
                accepted: true,
            },
            TraceEvent::PeerDown {
                peer: "127.0.0.1:7402".to_string(),
                failures: 3,
            },
            TraceEvent::Health {
                status: "degraded".to_string(),
                ready: false,
                live: true,
            },
            TraceEvent::FlightDump {
                reason: "wal_degraded".to_string(),
                events: 64,
                dropped: 2,
                truncated: 1,
                sampled: true,
            },
            TraceEvent::TraceSampled {
                sample: 0.01,
                slow_ms: 250,
            },
        ];
        for event in &events {
            let json = event.to_json();
            assert_eq!(json.get("schema").and_then(Value::as_str), Some(SCHEMA));
            assert_eq!(
                json.get("event").and_then(Value::as_str),
                Some(event.kind())
            );
            assert_eq!(
                json.get("round").and_then(Value::as_u64),
                Some(event.round() as u64)
            );
        }
    }

    #[test]
    fn round_end_round_trips_through_serde_json() {
        let event = TraceEvent::RoundEnd {
            round: 5,
            counts: RoundCounts {
                sent: 10,
                delivered: 8,
                dropped: 2,
                misaddressed: 1,
            },
            nanos: 1234,
        };
        let line = serde_json::to_string(&event.to_json()).unwrap();
        let back: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(back.get("sent").and_then(Value::as_u64), Some(10));
        assert_eq!(back.get("dropped").and_then(Value::as_u64), Some(2));
        assert_eq!(back.get("event").and_then(Value::as_str), Some("round_end"));
    }

    #[test]
    fn span_start_serialises_parent_as_null_or_id() {
        let root = TraceEvent::SpanStart {
            round: 0,
            span_id: 3,
            parent: None,
            name: "net_send".to_string(),
            trace_id: None,
            ctx_parent: None,
        };
        assert_eq!(root.to_json().get("parent"), Some(&Value::Null));
        // Local spans without a context stay byte-identical to pre-ctx
        // traces: no trace_id/ctx_parent keys at all.
        assert_eq!(root.to_json().get("trace_id"), None);
        assert_eq!(root.to_json().get("ctx_parent"), None);

        let child = TraceEvent::SpanStart {
            round: 0,
            span_id: 4,
            parent: Some(3),
            name: "net_send".to_string(),
            trace_id: None,
            ctx_parent: None,
        };
        let json = child.to_json();
        assert_eq!(json.get("parent").and_then(Value::as_u64), Some(3));
        assert_eq!(json.get("span_id").and_then(Value::as_u64), Some(4));
    }

    #[test]
    fn span_start_serialises_trace_context_as_hex_and_parent_id() {
        let stamped = TraceEvent::SpanStart {
            round: 0,
            span_id: 5,
            parent: None,
            name: "rpc.check_horizon".to_string(),
            trace_id: Some(0xabc),
            ctx_parent: Some(17),
        };
        let json = stamped.to_json();
        assert_eq!(
            json.get("trace_id").and_then(Value::as_str),
            Some("00000000000000000000000000000abc")
        );
        assert_eq!(json.get("ctx_parent").and_then(Value::as_u64), Some(17));
        // The local parent stays null: the remote edge lives only in
        // ctx_parent and is resolved by `trace stitch`.
        assert_eq!(json.get("parent"), Some(&Value::Null));
    }

    #[test]
    fn health_serialises_status_and_probe_booleans() {
        let event = TraceEvent::Health {
            status: "ok".to_string(),
            ready: true,
            live: true,
        };
        let json = event.to_json();
        assert_eq!(json.get("event").and_then(Value::as_str), Some("health"));
        assert_eq!(json.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(json.get("ready").and_then(Value::as_bool), Some(true));
        assert_eq!(json.get("live").and_then(Value::as_bool), Some(true));
        assert_eq!(json.get("round").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn counts_absorb_adds_fieldwise() {
        let mut total = RoundCounts::default();
        total.absorb(RoundCounts {
            sent: 3,
            delivered: 2,
            dropped: 1,
            misaddressed: 4,
        });
        total.absorb(RoundCounts {
            sent: 1,
            delivered: 1,
            dropped: 0,
            misaddressed: 0,
        });
        assert_eq!(
            total,
            RoundCounts {
                sent: 4,
                delivered: 3,
                dropped: 1,
                misaddressed: 4,
            }
        );
    }
}
