//! # minobs-suite — the batteries-included facade
//!
//! Re-exports every `minobs` crate under one roof, hosts the workspace's
//! integration tests (`tests/` at the repository root) and the runnable
//! examples (`examples/` at the repository root).
//!
//! Downstream users who want a single dependency can use this crate:
//!
//! ```
//! use minobs_suite::core::prelude::*;
//!
//! let verdict = decide_classic(&classic::r1());
//! assert!(!verdict.is_solvable()); // Γ^ω is an obstruction
//! ```

pub use minobs_bigint as bigint;
pub use minobs_core as core;
pub use minobs_graphs as graphs;
pub use minobs_net as net;
pub use minobs_obs as obs;
pub use minobs_omega as omega;
pub use minobs_sim as sim;
pub use minobs_synth as synth;
