//! The JSON value model shared by the `serde` and `serde_json` shims.

use std::fmt;

/// A JSON number: integer-preserving, like `serde_json::Number`.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// From a `u64`.
    pub fn from_u64(v: u64) -> Number {
        Number::PosInt(v)
    }

    /// From an `i64` (normalized to `PosInt` when non-negative).
    pub fn from_i64(v: i64) -> Number {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// From an `f64`.
    pub fn from_f64(v: f64) -> Number {
        Number::Float(v)
    }

    /// As `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(*v),
            _ => None,
        }
    }

    /// As `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(*v).ok(),
            Number::NegInt(v) => Some(*v),
            Number::Float(_) => None,
        }
    }

    /// As `f64` (always representable, possibly lossily).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(v) => *v as f64,
            Number::NegInt(v) => *v as f64,
            Number::Float(v) => *v,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no NaN/Inf; emit null like serde_json does.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered JSON object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts or replaces `key`.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes `key`, returning its value when it was present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let index = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(index).1)
    }

    /// `true` when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// As `&str`, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `u64`, when a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64`, when an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64`, when a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As `bool`, when a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a slice, when an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// As an object, when one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::from_u64(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::from_u64(v as u64))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Number(Number::from_u64(v as u64))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number::from_i64(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::from_f64(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", Value::from(1u64));
        m.insert("a", Value::from(2u64));
        m.insert("b", Value::from(3u64));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn accessors_filter_by_variant() {
        let v = Value::from(7u64);
        assert_eq!(v.as_u64(), Some(7));
        assert_eq!(v.as_str(), None);
        assert!(!v.is_null());
        assert_eq!(Value::from(-3i64).as_i64(), Some(-3));
    }
}
