//! Offline shim for the `serde` crate.
//!
//! Serialization here is concrete rather than visitor-based: a type
//! serializes by converting itself into the small JSON [`value::Value`]
//! model, which `serde_json` (the sibling shim) renders and parses. The
//! `derive` feature is accepted for manifest compatibility but provides no
//! macro — types implement [`Serialize`] by hand via [`value::Map`].

pub mod value;

/// Conversion into the JSON value model.
pub trait Serialize {
    /// This value as a JSON tree.
    fn to_json_value(&self) -> value::Value;
}

impl Serialize for value::Value {
    fn to_json_value(&self) -> value::Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> value::Value {
        value::Value::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> value::Value {
                value::Value::Number(value::Number::from_u64(*self as u64))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> value::Value {
                value::Value::Number(value::Number::from_i64(*self as i64))
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> value::Value {
        value::Value::Number(value::Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> value::Value {
        value::Value::Number(value::Number::from_f64(*self as f64))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> value::Value {
        value::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> value::Value {
        value::Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> value::Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> value::Value {
        value::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> value::Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> value::Value {
        match self {
            None => value::Value::Null,
            Some(v) => v.to_json_value(),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json_value(&self) -> value::Value {
        let mut map = value::Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_json_value());
        }
        value::Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::Serialize;

    #[test]
    fn primitives_round_into_values() {
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!(3u64.to_json_value().as_u64(), Some(3));
        assert_eq!((-2i64).to_json_value().as_i64(), Some(-2));
        assert_eq!("hi".to_json_value().as_str(), Some("hi"));
        assert_eq!(Option::<u32>::None.to_json_value(), Value::Null);
    }

    #[test]
    fn collections_nest() {
        let v = vec![1u32, 2, 3].to_json_value();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_u64(), Some(3));
    }
}
