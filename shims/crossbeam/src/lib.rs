//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the `|_|`-style spawn closure
//! signature the engines use, implemented on top of `std::thread::scope`
//! (which did not exist when crossbeam's scoped threads were written),
//! and `crossbeam::channel` — the MPMC channels the `minobs-svc` worker
//! pool dispatches on — over a `Mutex<VecDeque>` + `Condvar` core.

pub mod channel {
    //! Multi-producer multi-consumer channels.
    //!
    //! The subset of `crossbeam-channel` the workspace uses: [`unbounded`]
    //! and [`bounded`] construction, cloneable [`Sender`]/[`Receiver`]
    //! halves, blocking `send`/`recv`, `try_recv`, and `recv_timeout`.
    //! Disconnection follows crossbeam's contract: a channel is closed
    //! once every handle on the *other* side has been dropped, and a
    //! closed channel still drains messages already queued.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half. Cloning adds a producer.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half. Cloning adds a consumer.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The message could not be delivered: every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now.
        Empty,
        /// No message queued and every sender is gone.
        Disconnected,
    }

    /// Why `recv_timeout` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// Every sender is gone and the queue drained.
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// A channel with no capacity bound: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A channel holding at most `cap` queued messages: `send` blocks
    /// while full. `cap` must be nonzero (rendezvous channels are not
    /// part of this shim's subset).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded(0) rendezvous channels are not shimmed");
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last producer gone: wake blocked receivers so they can
                // observe the disconnect. The lock is held while
                // notifying so the disconnect cannot slip between a
                // receiver's sender-count check and its wait (which
                // would lose the wakeup and block that receiver
                // forever).
                let _queue = self.inner.lock();
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last consumer gone: wake blocked senders to fail fast.
                // Lock held while notifying for the same missed-wakeup
                // reason as in `Sender::drop`.
                let _queue = self.inner.lock();
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Queues `value`, blocking while a bounded channel is full.
        /// Fails (returning the value) once every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.lock();
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self
                            .inner
                            .not_full
                            .wait(queue)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the oldest message, blocking while the channel is
        /// empty. Fails once the queue is drained and every sender is
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.lock();
            match queue.pop_front() {
                Some(value) => {
                    self.inner.not_full.notify_one();
                    Ok(value)
                }
                None if self.inner.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// [`Receiver::recv`] with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        }
    }
}

pub mod thread {
    //! Scoped threads.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle to the scope, passed to every spawned closure (unused by
    /// this workspace's call sites, which all write `|_|`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle awaiting a spawned thread's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives a unit
        /// placeholder where crossbeam passes a nested scope handle.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before this returns. Returns `Err`
    /// with the panic payload when the closure or an unjoined thread
    /// panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, RecvTimeoutError, TryRecvError};
    use super::thread;
    use std::time::Duration;

    #[test]
    fn spawn_and_join_collects_results() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panicked_worker_surfaces_as_err() {
        let result = thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            // Leave the panic to the scope exit: drop the handle unjoined.
            drop(h);
        });
        assert!(result.is_err());
    }

    #[test]
    fn unbounded_fifo_across_threads() {
        let (tx, rx) = channel::unbounded();
        let received = thread::scope(|scope| {
            let consumer = scope.spawn(|_| {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            for producer in 0..4u64 {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    for i in 0..25u64 {
                        tx.send(producer * 100 + i).unwrap();
                    }
                });
            }
            drop(tx); // disconnect once the producers finish
            consumer.join().unwrap()
        })
        .unwrap();
        assert_eq!(received.len(), 100);
        // Per-producer order is preserved even though global order is not.
        for producer in 0..4u64 {
            let ours: Vec<_> = received
                .iter()
                .filter(|v| **v / 100 == producer)
                .collect();
            assert!(ours.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let all = thread::scope(|scope| {
            let handle = scope.spawn(|_| {
                tx.send(2).unwrap(); // blocks until the receiver drains
                tx.send(3).unwrap();
            });
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(rx.recv().unwrap());
            }
            handle.join().unwrap();
            got
        })
        .unwrap();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = channel::unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        // A closed channel still drains queued messages.
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );

        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7u32), Err(channel::SendError(7)));
    }

    #[test]
    fn last_sender_drop_always_wakes_blocked_receivers() {
        // Regression for a missed-wakeup race: the last sender's drop
        // used to notify without the queue lock, so the disconnect
        // could land between a receiver's check and its wait, leaving
        // the receiver blocked forever. Many iterations with receivers
        // already parked make the old interleaving likely.
        for _ in 0..200 {
            let (tx, rx) = channel::unbounded::<u32>();
            thread::scope(|scope| {
                for _ in 0..2 {
                    let rx = rx.clone();
                    scope.spawn(move |_| assert_eq!(rx.recv(), Err(channel::RecvError)));
                }
                scope.spawn(move |_| drop(tx));
            })
            .unwrap();
        }
    }

    #[test]
    fn recv_timeout_expires_on_empty_channel() {
        let (tx, rx) = channel::unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }
}
