//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the `|_|`-style spawn closure
//! signature the engines use, implemented on top of `std::thread::scope`
//! (which did not exist when crossbeam's scoped threads were written).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle to the scope, passed to every spawned closure (unused by
    /// this workspace's call sites, which all write `|_|`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle awaiting a spawned thread's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives a unit
        /// placeholder where crossbeam passes a nested scope handle.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before this returns. Returns `Err`
    /// with the panic payload when the closure or an unjoined thread
    /// panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn spawn_and_join_collects_results() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panicked_worker_surfaces_as_err() {
        let result = thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            // Leave the panic to the scope exit: drop the handle unjoined.
            drop(h);
        });
        assert!(result.is_err());
    }
}
