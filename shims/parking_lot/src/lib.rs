//! Offline shim for the `parking_lot` crate.
//!
//! A `Mutex` with parking_lot's panic-free `lock()` signature, backed by
//! `std::sync::Mutex` (poison is ignored, as parking_lot does by design).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5usize);
        *m.lock() += 2;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
