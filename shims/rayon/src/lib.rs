//! Offline shim for the `rayon` crate.
//!
//! Implements the `par_iter().map(f).collect()` pipeline the model checker
//! uses, with real data parallelism: the input slice is split into one
//! contiguous chunk per available core, each chunk is mapped on a scoped
//! thread, and the per-chunk outputs are concatenated in order — so
//! results are position-stable exactly like rayon's indexed collect.

pub mod prelude {
    //! The rayon prelude subset.
    pub use crate::{IntoParallelRefIterator, ParallelMap};
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// The element reference type.
    type Item: 'a;
    /// Begins a parallel pipeline over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` (in parallel at collect time).
    pub fn map<R, F>(self, f: F) -> ParallelMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParallelMap {
            slice: self.slice,
            f,
        }
    }
}

/// A mapped parallel pipeline, evaluated by [`ParallelMap::collect`].
pub struct ParallelMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParallelMap<'a, T, F> {
    /// Evaluates the pipeline and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.slice.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 || n < 2 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut per_chunk: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            per_chunk = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
