//! Offline shim for the `serde_json` crate.
//!
//! Renders and parses the [`Value`] model from the sibling `serde` shim:
//! `to_string` / `to_string_pretty` over anything implementing
//! `serde::Serialize`, and a recursive-descent `from_str` returning a
//! `Value` tree. Covers the full JSON grammar (escapes included) at the
//! scale this workspace needs — experiment artifacts and trace lines.

pub use serde::value::{Map, Number, Value};
use serde::Serialize;
use std::fmt;

/// A parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    position: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for Error {}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by our traces;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::from_f64(v)))
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let mut map = Map::new();
        map.insert("name", Value::from("trace \"v1\"\n"));
        map.insert("round", Value::from(3u64));
        map.insert("ratio", Value::from(0.5));
        map.insert("tags", Value::from(vec![1u64, 2]));
        map.insert("none", Value::Null);
        let text = to_string(&Value::Object(map.clone())).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, Value::Object(map));
    }

    #[test]
    fn pretty_output_parses_back() {
        let mut inner = Map::new();
        inner.insert("k", Value::Bool(true));
        let value = Value::Array(vec![Value::Object(inner), Value::from(-4i64)]);
        let text = to_string_pretty(&value).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str(&text).unwrap(), value);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#"{"s": "aA\n\"b\"", "π": 3.5}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("aA\n\"b\""));
        assert_eq!(v.get("π").unwrap().as_f64(), Some(3.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "tru", "\"x", "{\"a\":}", "1 2", ""] {
            assert!(from_str(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn integers_preserved_exactly() {
        let v = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = from_str("-9007199254740993").unwrap();
        assert_eq!(v.as_i64(), Some(-9007199254740993));
    }
}
