//! Offline shim for the `criterion` crate.
//!
//! A small wall-clock harness with criterion's call surface:
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_with_input` / `bench_function`, and `Bencher::iter`. Each
//! benchmark is warmed up, then timed over `sample_size` samples whose
//! iteration counts target roughly a millisecond per sample; the median,
//! minimum, and maximum per-iteration times are printed. No plots, no
//! statistics beyond that — enough to compare two code paths honestly.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// The harness root; one per `criterion_group!` runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Benchmarks `f` without input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label: String = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        bencher.report(&self.name, &label);
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Measured per-iteration statistics, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// The timing driver passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    result: Option<Sampled>,
}

impl Bencher {
    /// Times `f`: warm-up, then `sample_size` samples of an iteration
    /// count chosen so one sample takes roughly a millisecond.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: grow the batch until it costs ≥ 1 ms,
        // then keep that per-sample iteration count.
        let mut iters: u64 = 1;
        let per_sample = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break iters;
            }
            iters *= 4;
        };

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Sampled {
            median_ns: samples[samples.len() / 2],
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
        });
    }

    fn report(&self, group: &str, label: &str) {
        match &self.result {
            Some(s) => println!(
                "{group}/{label:<40} median {:>12}  (min {}, max {})",
                format_ns(s.median_ns),
                format_ns(s.min_ns),
                format_ns(s.max_ns)
            ),
            None => println!("{group}/{label:<40} (no measurement)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
    }
}
