//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the `proptest!` macro with `#![proptest_config(...)]`,
//! `prop_assert*`, [`Strategy`] with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, character-class string strategies of the form
//! `"[chars]{lo,hi}"`, `any::<T>()`, and `collection::{vec, btree_set}`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name and case index), so failures are reproducible run to run.
//! There is no shrinking: a failing case panics with the standard assert
//! message, which is enough to paste the inputs into a unit test.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// The per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic RNG for (test, case).
    pub fn deterministic(test_hash: u64, case: u32) -> TestRng {
        TestRng {
            state: test_hash ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// FNV-1a over a string — used to derive per-test seeds.
pub fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}
impl_range_strategies!(usize, u8, u16, u32, u64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String strategy from a `"[chars]{lo,hi}"` character-class pattern; any
/// other pattern generates itself literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let chars: Vec<char> = rest[..close].chars().collect();
    if chars.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    if quant.is_empty() {
        return Some((chars, 1, 1));
    }
    let quant = quant.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match quant.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = quant.trim().parse().ok()?;
            (n, n)
        }
    };
    (lo <= hi).then_some((chars, lo, hi))
}

/// Uniform values of a primitive type; see [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — uniform values over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical uniform strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a size specification: an exact `usize` or a
    /// (half-open / inclusive) range of lengths.
    pub trait SizeSpec {
        /// Draws a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeSpec for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeSpec for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeSpec for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// A `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: SizeSpec>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeSpec> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element`; `size` bounds the number of
    /// insertion attempts, so duplicates may yield a smaller set.
    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeSpec,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeSpec,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let attempts = self.size.pick(rng);
            (0..attempts).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The proptest prelude subset.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Property assertion; identical to `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property equality assertion; identical to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Property inequality assertion; identical to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares deterministic property tests.
///
/// Supports the block form used across this workspace:
/// an optional `#![proptest_config(...)]` header followed by
/// `fn name(pattern in strategy, ...) { body }` items, each compiled to a
/// `#[test]` that runs `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng =
                    $crate::TestRng::deterministic($crate::fxhash(stringify!($name)), case);
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

// Re-exported for macro use; `BTreeSet` appears in generated signatures.
#[doc(hidden)]
pub use std::collections::BTreeSet as __BTreeSet;

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{parse_class_pattern, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(1, 0);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2u32..=4).generate(&mut rng);
            assert!((2..=4).contains(&w));
            let x = (1u32..).generate(&mut rng);
            assert!(x >= 1);
        }
    }

    #[test]
    fn class_patterns_parse() {
        let (chars, lo, hi) = parse_class_pattern("[-wb]{0,32}").unwrap();
        assert_eq!(chars, vec!['-', 'w', 'b']);
        assert_eq!((lo, hi), (0, 32));
        assert!(parse_class_pattern("plain").is_none());
    }

    #[test]
    fn string_strategy_respects_class() {
        let mut rng = TestRng::deterministic(2, 1);
        for _ in 0..100 {
            let s = "[-wbx]{1,5}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 5);
            assert!(s.chars().all(|c| "-wbx".contains(c)));
        }
    }

    #[test]
    fn composite_strategies_compose() {
        let mut rng = TestRng::deterministic(3, 2);
        let strat = (2usize..=5).prop_flat_map(|n| {
            (crate::collection::vec(0usize..n, n), Just(n))
        });
        for _ in 0..50 {
            let (v, n) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn macro_generates_cases(x in 0u64..100, s in "[ab]{2,3}") {
            prop_assert!(x < 100);
            prop_assert!(s.len() == 2 || s.len() == 3);
            prop_assert_ne!(s.len(), 0);
        }
    }

    proptest! {
        fn macro_default_config(pair in (any::<u32>(), any::<bool>())) {
            let (x, b) = pair;
            prop_assert_eq!(x as u64 & 1 == 1 || !(x as u64 & 1 == 1), true);
            let _ = b;
        }
    }
}
