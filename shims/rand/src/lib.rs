//! Offline shim for the `rand` crate.
//!
//! The build environment cannot reach a cargo registry, so this in-tree
//! crate provides the exact subset of the `rand 0.10` API the workspace
//! uses: `Rng` / `RngExt` / `SeedableRng`, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64), and
//! [`seq::SliceRandom::shuffle`]. The generator is deterministic per seed,
//! which is all the experiments and equivalence tests rely on; it makes no
//! claim of matching upstream `StdRng` output streams.

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    fn random_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        // Modulo bias is ≤ bound/2^64 — irrelevant at the sizes used here.
        (self.next_u64() % bound as u64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension methods that live on a separate trait upstream (rand 0.10
/// splits sampling helpers out of the core `Rng` trait).
pub trait RngExt: Rng {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_below(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn random_bool_extremes() {
        use super::RngExt;
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..64).all(|_| !rng.random_bool(0.0)));
        assert!((0..64).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn random_below_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for bound in [1usize, 2, 17] {
            for _ in 0..32 {
                assert!(rng.random_below(bound) < bound);
            }
        }
    }
}
