//! An atlas of obstructions (Section IV-C): the special-pair matching,
//! exact covers, the canonical minimal obstruction, and the infinite
//! descending chain — the structures behind "Γω is merely the *nearest*
//! obstruction to a minimal one".
//!
//! ```text
//! cargo run --example obstruction_atlas
//! ```

use minobs_core::minimal::{
    build_spair_graph, descending_chain, distance_to_minimality, is_lower_pair_member,
    CanonicalMinimalObstruction,
};
use minobs_core::prelude::*;
use minobs_core::theorem::decide_gamma;

fn main() {
    println!("== Atlas of obstructions inside Γω ==\n");

    // 1. The SPair matching.
    for max_prefix in 1..=3 {
        let g = build_spair_graph(max_prefix);
        println!(
            "unfair lassos with transient ≤ {max_prefix}: {:>4} scenarios, {:>3} special pairs, matching: {}",
            g.nodes.len(),
            g.edges.len(),
            g.is_matching()
        );
    }

    let g = build_spair_graph(2);
    println!("\nA few pairs (lower ↔ upper):");
    for &(i, j) in g.edges.iter().take(8) {
        let (a, b) = (&g.nodes[i], &g.nodes[j]);
        let (lo, hi) = if is_lower_pair_member(a) == Some(true) {
            (a, b)
        } else {
            (b, a)
        };
        println!("  {lo:<10} ↔ {hi}");
    }

    // 2. Exact covers → minimal obstructions.
    let (lowers, uppers) = g.canonical_exact_covers();
    println!(
        "\nExact covers of the matching: lower-endpoints ({}) and upper-endpoints ({}).",
        lowers.len(),
        uppers.len()
    );
    println!("Each induces a minimal obstruction Γω \\ U (Section IV-C).");

    // 3. The canonical minimal obstruction as a first-class scheme.
    let cmo = CanonicalMinimalObstruction;
    println!("\nThe canonical minimal obstruction (drop all lower members):");
    println!("  decide_gamma → {:?}", decide_gamma(&cmo));
    for s in ["(-)", "(wb)", "(w)", "(b)", "b(w)", "-(w)", "-w(b)", "--(b)"] {
        let scenario: Scenario = s.parse().unwrap();
        println!(
            "  contains {s:<8} = {}",
            cmo.contains(&scenario)
        );
    }

    // 4. The descending chain: no least obstruction.
    println!("\nThe descending chain L_0 ⊋ L_1 ⊋ … (all obstructions):");
    for (i, l) in descending_chain(4).iter().enumerate() {
        println!(
            "  L_{i} = {:<48} → {:?}",
            l.name(),
            decide_gamma(l)
        );
    }

    // 5. How far Γω is from minimality.
    println!("\nScenarios to remove from Γω to reach the canonical minimal obstruction");
    println!("(restricted to bounded transients):");
    for max_prefix in 1..=4 {
        println!(
            "  transient ≤ {max_prefix}: {} lower members",
            distance_to_minimality(max_prefix)
        );
    }
    println!("\n…and the count keeps growing with the bound: Γω sits infinitely far");
    println!("above minimality, yet removing any *single* scenario keeps it an");
    println!("obstruction — it is the nearest simple scheme to a minimal one.");
}
