//! Quickstart: decide an omission scheme, extract a witness, run the
//! paper's algorithm, watch consensus happen.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use minobs_core::prelude::*;

fn main() {
    println!("== minobs quickstart: the Coordinated Attack Problem ==\n");

    // The seven environments of Section II-A2.
    println!("Theorem III.8 verdicts for the paper's seven environments:");
    for scheme in classic::seven_environments() {
        let verdict = decide_classic(&scheme);
        match &verdict {
            Solvability::Solvable { witness, condition } => {
                println!("  {:<38} SOLVABLE  (witness {witness}, via {condition:?})", scheme.name());
            }
            Solvability::Obstruction => {
                println!("  {:<38} OBSTRUCTION", scheme.name());
            }
        }
    }

    // Pick environment 5 (one faulty process) and actually run A_w.
    let s1 = classic::s1();
    let verdict = decide_classic(&s1);
    let w = verdict.witness().expect("S1 is solvable").clone();
    println!("\nRunning A_w (w = {w}) for {} on a few scenarios:", s1.name());

    for scenario_text in ["(-)", "(w)", "ww(-)", "-(b)", "(b)"] {
        let scenario: Scenario = scenario_text.parse().unwrap();
        if !s1.contains(&scenario) {
            println!("  {scenario_text:<8} — not in S1, skipped");
            continue;
        }
        // General White wants to attack, General Black does not.
        let mut white = AwProcess::new(Role::White, true, w.clone());
        let mut black = AwProcess::new(Role::Black, false, w.clone());
        let outcome = run_two_process(&mut white, &mut black, &scenario, 64);
        println!(
            "  {scenario_text:<8} → {:?} in {} rounds ({} of {} messages delivered)",
            outcome.verdict, outcome.rounds, outcome.messages_delivered, outcome.messages_sent
        );
    }

    println!("\nEvery verdict above is reproducible: `cargo test --workspace`.");
}
