//! A campaign of the two generals: sweep fault environments and watch
//! where agreement becomes impossible.
//!
//! This example walks the full two-process theory: round complexity
//! (Corollary III.14 / Proposition III.15), the intuitive almost-fair
//! algorithm (Corollary IV.1), the mechanical bivalency chains produced by
//! the model checker for the obstructions, and the special-pair structure.
//!
//! ```text
//! cargo run --example two_generals_campaign
//! ```

use minobs_core::prelude::*;
use minobs_core::scenario::enumerate_gamma_lassos;
use minobs_core::theorem::min_excluded_prefix;
use minobs_synth::checker::{first_solvable_horizon, gamma_alphabet, solvable_by, CheckResult};

fn main() {
    println!("== The two generals' campaign ==\n");

    // 1. Round complexity across the solvable environments.
    println!("Worst-case round complexity (theory = min excluded prefix; measured = capped A_w):");
    let solvable = [
        classic::s0(),
        classic::t_white(),
        classic::t_black(),
        classic::c1(),
        classic::s1(),
    ];
    let universe = enumerate_gamma_lassos(2, 2);
    for scheme in &solvable {
        let (p, w0) = min_excluded_prefix(scheme, 5).expect("bounded scheme");
        let w = Scenario::new(w0.to_word(), "b".parse().unwrap());
        let mut worst = 0usize;
        for s in universe.iter().filter(|s| scheme.contains(s)) {
            for (wi, bi) in [(false, false), (false, true), (true, false), (true, true)] {
                let mut white = AwProcess::new(Role::White, wi, w.clone()).with_round_cap(p);
                let mut black = AwProcess::new(Role::Black, bi, w.clone()).with_round_cap(p);
                let out = run_two_process(&mut white, &mut black, s, 32);
                assert!(out.verdict.is_consensus());
                worst = worst.max(out.rounds);
            }
        }
        println!("  {:<38} theory p = {p}, measured worst = {worst}", scheme.name());
    }

    // 2. The almost-fair environment and its intuitive algorithm.
    println!("\nCorollary IV.1 — the almost-fair scheme Γω \\ {{(b)ω}}:");
    for s in ["(-)", "(w)", "w(b)", "bw(b)"] {
        let scenario: Scenario = s.parse().unwrap();
        let mut white = IntuitiveAlmostFair::new(Role::White, true);
        let mut black = IntuitiveAlmostFair::new(Role::Black, false);
        let out = run_two_process(&mut white, &mut black, &scenario, 64);
        println!("  intuitive algorithm on {s:<8} → {:?} in {} rounds", out.verdict, out.rounds);
    }

    // 3. Mechanical bivalency: why Γω is an obstruction.
    println!("\nMechanical bivalency for R1 = Γω (the model checker's certificate):");
    for k in 1..=4 {
        match solvable_by(&classic::r1(), k, &gamma_alphabet()) {
            CheckResult::Unsolvable { chain } => {
                println!(
                    "  horizon {k}: no {k}-round algorithm; indistinguishability chain of {} executions",
                    chain.len()
                );
            }
            other => println!("  horizon {k}: unexpected {other:?}"),
        }
    }
    println!(
        "  (for comparison, S1 becomes solvable at horizon {:?})",
        first_solvable_horizon(&classic::s1(), 4, &gamma_alphabet())
    );

    // 4. A round-by-round look inside A_w: the phantom indexes framing
    //    ind(v_r) (Proposition III.12) until they drift from ind(w_r).
    println!("\nInside A_w: phantom indexes under v = (wb-) with forbidden w = (b):");
    {
        use minobs_core::index::IndexTracker;
        let w: Scenario = "(b)".parse().unwrap();
        let v: Scenario = "(wb-)".parse().unwrap();
        let mut white = AwProcess::new(Role::White, false, w.clone());
        let mut black = AwProcess::new(Role::Black, true, w.clone());
        let mut v_tracker = IndexTracker::new();
        let mut w_tracker = IndexTracker::new();
        println!("  round letter  ind_White ind_Black  ind(v_r) ind(w_r)");
        for r in 0..8 {
            if white.halted() && black.halted() {
                break;
            }
            let letter = v.letter_at(r);
            let to_white = (!black.halted() && letter.delivers_from(Role::Black))
                .then(|| black.outgoing().unwrap());
            let to_black = (!white.halted() && letter.delivers_from(Role::White))
                .then(|| white.outgoing().unwrap());
            if !white.halted() {
                white.advance(to_white);
            }
            if !black.halted() {
                black.advance(to_black);
            }
            v_tracker.push(letter.to_gamma().unwrap());
            w_tracker.push(w.letter_at(r).to_gamma().unwrap());
            println!(
                "  {r:>5} {:>6}  {:>9} {:>9}  {:>8} {:>8}{}{}",
                letter.to_string(),
                white.phantom_index().to_string(),
                black.phantom_index().to_string(),
                v_tracker.value().to_string(),
                w_tracker.value().to_string(),
                if white.halted() { "  ◻ halted" } else { "" },
                if black.halted() { "  ◼ halted" } else { "" },
            );
        }
        println!(
            "  decisions: White={:?} Black={:?} — min(ind_◻, ind_◼) tracks ind(v_r)\n\
             \x20 until the drift from ind(w_r) exceeds 1 and the side decides the value.",
            white.decision(),
            black.decision()
        );
    }

    // 5. Special pairs: the fault lines of the impossibility proof.
    println!("\nSpecial pairs among unfair lassos (transient ≤ 2):");
    let g = minobs_core::minimal::build_spair_graph(2);
    println!(
        "  {} unfair scenarios, {} pairs — a perfect matching: {}",
        g.nodes.len(),
        g.edges.len(),
        g.is_matching()
    );
    for &(i, j) in g.edges.iter().take(5) {
        println!("    {}  ↔  {}", g.nodes[i], g.nodes[j]);
    }
    println!("    …");
    println!(
        "\nRemoving one member of every pair from Γω yields a *minimal* obstruction\n\
         (run the obstruction_atlas example for the full story)."
    );
}
