//! Section V live: consensus on arbitrary networks with omission faults.
//!
//! Sweeps graph families and per-round loss budgets `f`, demonstrating the
//! Theorem V.1 threshold `f < c(G)` on both sides: flooding succeeds below
//! it, the cut adversary defeats flooding at it, and Algorithm 4 solves
//! the solvable sub-schemes of `Γ_C^ω` that live beyond the
//! Santoro–Widmayer gap `c(G) ≤ f < deg(G)`.
//!
//! ```text
//! cargo run --example network_agreement
//! ```

use minobs_graphs::{cut_partition, edge_connectivity, generators, min_degree, Graph};
use minobs_net::{AlgorithmL, DecisionRule, FloodConsensus};
use minobs_sim::adversary::{BudgetChecked, CutAdversary, RandomOmissions};
use minobs_sim::network::{run_network, NetVerdict};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("cycle(8)", generators::cycle(8)),
        ("complete(6)", generators::complete(6)),
        ("torus(3x3)", generators::torus(3, 3)),
        ("hypercube(3)", generators::hypercube(3)),
        ("barbell(4,2)", generators::barbell(4, 2)),
        ("theta(3,2)", generators::theta(3, 2)),
        ("petersen", generators::petersen()),
    ]
}

fn main() {
    println!("== Theorem V.1: consensus on G iff f < c(G) ==\n");
    println!(
        "{:<14} {:>4} {:>5} {:>5}   f-sweep (✓ consensus / ✗ broken)",
        "graph", "n", "c(G)", "deg"
    );

    for (name, g) in families() {
        let n = g.vertex_count();
        let c = edge_connectivity(&g);
        let d = min_degree(&g);
        let mut cells: Vec<String> = Vec::new();
        for f in 0..=c {
            let ok = if f < c {
                // Random O_f adversary, several seeds.
                (0..5u64).all(|seed| {
                    let inputs: Vec<u64> = (0..n as u64).collect();
                    let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
                    let mut adv =
                        BudgetChecked::new(RandomOmissions::new(f, StdRng::seed_from_u64(seed)), f);
                    run_network(&g, nodes, &mut adv, 2 * n).verdict.is_consensus()
                })
            } else {
                // f = c(G): the Γ_C cut adversary silences one direction.
                let p = cut_partition(&g).unwrap();
                let inputs: Vec<u64> = (0..n as u64).collect();
                let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
                let mut adv = CutAdversary::new(&p, "(w)".parse().unwrap());
                run_network(&g, nodes, &mut adv, 2 * n).verdict.is_consensus()
            };
            cells.push(format!("f={f}:{}", if ok { "✓" } else { "✗" }));
        }
        println!(
            "{name:<14} {n:>4} {c:>5} {d:>5}   {}",
            cells.join("  ")
        );
    }

    println!("\n-- Inside the Santoro–Widmayer gap (barbell: c(G) < deg(G)) --");
    let g = generators::barbell(4, 2);
    let p = cut_partition(&g).unwrap();
    println!(
        "barbell(4,2): c = {}, deg = {} — [SW07] left c ≤ f < deg open;",
        edge_connectivity(&g),
        min_degree(&g)
    );
    println!("Theorem V.1 answers: O_f is an obstruction there. But *sub-schemes* of Γ_C^ω");
    println!("whose ρ-image is solvable still admit consensus, e.g. the almost-fair scheme:");
    let inputs: Vec<u64> = (0..g.vertex_count())
        .map(|v| p.side_b.contains(&v) as u64)
        .collect();
    for v in ["(-)", "(w)", "(wb)", "-(b)"] {
        let fleet = AlgorithmL::fleet(&g, &p, &"(b)".parse().unwrap(), &inputs);
        let mut adv = CutAdversary::new(&p, v.parse().unwrap());
        let out = run_network(&g, fleet, &mut adv, 128);
        println!("  A_L under ρ⁻¹({v:<5}) → {:?} in {} rounds", out.verdict, out.stats.rounds);
    }

    println!("\n-- The forbidden scenario itself --");
    let fleet = AlgorithmL::fleet(&g, &p, &"(b)".parse().unwrap(), &inputs);
    let mut adv = CutAdversary::new(&p, "(b)".parse().unwrap());
    let out = run_network(&g, fleet, &mut adv, 64);
    match out.verdict {
        NetVerdict::Undecided { undecided } => println!(
            "  A_L under ρ⁻¹((b)) runs forever ({undecided} nodes undecided after 64 rounds) —\n  exactly the scenario the scheme excludes."
        ),
        other => println!("  unexpected: {other:?}"),
    }
}
