//! Bring your own fault environment: define a *new* omission scheme as
//! ω-automata obligations, get the full analysis pipeline for free —
//! Theorem III.8 verdict with witness, bounded-round checking, and a live
//! `A_w` run.
//!
//! The scheme built here: **"losses come in bursts of at most two,
//! separated by at least one clean round, and White's channel is lossless
//! from round 3 on"** — nothing the paper names, which is the point: the
//! framework handles arbitrary patterns.
//!
//! ```text
//! cargo run --example custom_scheme
//! ```

use minobs_core::prelude::*;
use minobs_omega::auto::{Acceptance, DetAutomaton, Obligation};
use minobs_omega::schemes::{decide_regular, RegularScheme};
use minobs_synth::checker::{first_solvable_horizon, gamma_alphabet};

/// Letters: 0 = Full, 1 = DropWhite, 2 = DropBlack (see `minobs_omega::pairs`).
fn burst_obligation() -> Obligation {
    // States: 0 = clean, 1 = one loss deep, 2 = two losses deep, 3 = dead.
    // A third consecutive loss dies; a clean round resets.
    let loss = |a: usize| a != 0;
    let trans = (0..4)
        .map(|state| {
            (0..3)
                .map(|a| match (state, loss(a)) {
                    (0, false) => 0,
                    (0, true) => 1,
                    (1, false) => 0,
                    (1, true) => 2,
                    (2, false) => 0,
                    (2, true) => 3,
                    (3, _) => 3,
                    _ => unreachable!(),
                })
                .collect()
        })
        .collect();
    Obligation::new(
        DetAutomaton::new(3, trans, 0),
        Acceptance::CoBuchi([3].into()),
    )
}

fn white_clean_after_3() -> Obligation {
    // States 0,1,2 count rounds; state 3 = steady (White lossless), 4 = dead.
    let trans = (0..5)
        .map(|state: usize| {
            (0..3usize)
                .map(|a| match state {
                    0..=2 => state + 1,
                    3 => {
                        if a == 1 {
                            4 // DropWhite after round 3: dead
                        } else {
                            3
                        }
                    }
                    4 => 4,
                    _ => unreachable!(),
                })
                .collect()
        })
        .collect();
    Obligation::new(
        DetAutomaton::new(3, trans, 0),
        Acceptance::CoBuchi([4].into()),
    )
}

fn main() {
    println!("== A custom fault environment, analyzed end to end ==\n");
    let scheme = RegularScheme::new(
        "bursty(≤2) ∧ White clean after round 3",
        vec![burst_obligation(), white_clean_after_3()],
    );

    println!("Scheme: {}", scheme.name());
    println!("Sample member: {:?}\n", scheme.sample_member().map(|s| s.to_string()));

    // Membership spot checks.
    for s in ["(-)", "(wb)", "wb(-)", "(wwb)", "(b)", "www(-)", "(w)"] {
        let scenario: Scenario = s.parse().unwrap();
        println!("  contains {s:<9} = {}", scheme.contains(&scenario));
    }

    // Theorem III.8, decided by automata emptiness.
    let verdict = decide_regular(&scheme);
    println!("\nTheorem III.8 verdict: {verdict:?}");

    let Some(w) = verdict.witness() else {
        println!("… an obstruction; nothing to run.");
        return;
    };

    // Bounded-round solvability.
    let horizon = first_solvable_horizon(&scheme, 6, &gamma_alphabet());
    println!("First bounded-decision horizon (≤ 6): {horizon:?}");

    // Run A_w on members.
    println!("\nRunning A_w (w = {w}) on members:");
    for s in ["(-)", "wb(-)", "-(b-)", "ww-(-)"] {
        let scenario: Scenario = s.parse().unwrap();
        if !scheme.contains(&scenario) {
            println!("  {s:<9} — not a member, skipped");
            continue;
        }
        let mut white = AwProcess::new(Role::White, true, w.clone());
        let mut black = AwProcess::new(Role::Black, false, w.clone());
        let out = run_two_process(&mut white, &mut black, &scenario, 128);
        println!("  {s:<9} → {:?} in {} rounds", out.verdict, out.rounds);
    }
}
