#!/usr/bin/env bash
# Regenerates every experiment artifact (EXPERIMENTS.md's evidence).
# Each binary asserts the paper claims internally; a clean exit IS the
# reproduction. JSON rows land in target/experiments/.
set -euo pipefail

EXPERIMENTS=(
  exp_fig1           # Figure 1: the index table + bijectivity audit
  exp_environments   # TAB-ENV: the seven environments
  exp_theorem_iii8   # TAB-III8: the characterization, two engines
  exp_round_lb       # TAB-LB: tight round complexity
  exp_bivalency      # TAB-BIVAL: mechanical bivalency chains
  exp_spair          # TAB-SPAIR: the special-pair matching
  exp_valency        # TAB-VALENCY: valency maps + decisive prefixes
  exp_network        # TAB-V1: the f < c(G) threshold
  exp_reduction      # TAB-RED: emulation equivalence + A_L
  exp_budget         # TAB-BUDGET: the classic f+1 bound
  exp_sigma          # TAB-SIGMA: double omission (open §VI), mapped
)

for exp in "${EXPERIMENTS[@]}"; do
  echo
  echo "================================================================"
  echo ">>> $exp"
  echo "================================================================"
  cargo run --release --quiet --bin "$exp"
done

echo
echo "================================================================"
echo ">>> bench_checker (minobs/bench/v1 perf trajectory, checker side)"
echo "================================================================"
# The recorded trajectories are measured under the same observation
# regime CI runs: tail sampling configured (slow_ms=0 keeps every
# timed request, so nothing is actually dropped) and the always-on
# flight ring. The artifacts stamp this into meta.sampling so a perf
# number is attributable to the regime it was measured under.
export MINOBS_TRACE_SAMPLE=0.01
export MINOBS_TRACE_SLOW_MS=0

# The recorded checker baseline: the pinned exp_budget configuration
# (total_budget(4) at horizons 4/5), timed; plus the shape gauges
# (peak frontier, dedup ratio) from one instrumented pass. Lands at
# the repo root so the trajectory is versioned alongside the code it
# measures.
cargo run --release --quiet --bin bench_checker -- --out BENCH_checker.json

echo
echo "================================================================"
echo ">>> bench_svc (open-loop frequency sweep, saturation knee)"
echo "================================================================"
# The service-side trajectory: an open-loop sweep that must locate the
# saturation knee (--expect-knee). The range spans well past the ~20k
# req/s a single-core box sustains so the knee is inside the sweep.
# The WAL is on so the recorded numbers include the durability tax
# (see docs/PERSISTENCE.md).
cargo build --release --quiet -p minobs-svc
mkdir -p target/svc
rm -f target/svc/bench_verdicts.wal
MINOBS_SVC_ADDR=127.0.0.1:0 \
MINOBS_SVC_WAL=target/svc/bench_verdicts.wal \
  target/release/minobs-svcd \
  > target/svc/bench_daemon.out 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" target/svc/bench_daemon.out && break
  sleep 0.2
done
ADDR=$(sed -n 's/.*listening on //p' target/svc/bench_daemon.out | head -1)
test -n "$ADDR"
target/release/svc bench --addr "$ADDR" \
  --sweep 5000:60000:5 --duration 3 --expect-knee \
  --out BENCH_svc.json --id bench_svc
target/release/svc call shutdown --addr "$ADDR" > /dev/null
wait "$DAEMON" 2>/dev/null || true
trap - EXIT

echo
echo "All experiments reproduced. Artifacts: target/experiments/*.json"
echo "Perf trajectory: BENCH_checker.json, BENCH_svc.json (repo root)"
