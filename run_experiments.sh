#!/usr/bin/env bash
# Regenerates every experiment artifact (EXPERIMENTS.md's evidence).
# Each binary asserts the paper claims internally; a clean exit IS the
# reproduction. JSON rows land in target/experiments/.
set -euo pipefail

EXPERIMENTS=(
  exp_fig1           # Figure 1: the index table + bijectivity audit
  exp_environments   # TAB-ENV: the seven environments
  exp_theorem_iii8   # TAB-III8: the characterization, two engines
  exp_round_lb       # TAB-LB: tight round complexity
  exp_bivalency      # TAB-BIVAL: mechanical bivalency chains
  exp_spair          # TAB-SPAIR: the special-pair matching
  exp_valency        # TAB-VALENCY: valency maps + decisive prefixes
  exp_network        # TAB-V1: the f < c(G) threshold
  exp_reduction      # TAB-RED: emulation equivalence + A_L
  exp_budget         # TAB-BUDGET: the classic f+1 bound
  exp_sigma          # TAB-SIGMA: double omission (open §VI), mapped
)

for exp in "${EXPERIMENTS[@]}"; do
  echo
  echo "================================================================"
  echo ">>> $exp"
  echo "================================================================"
  cargo run --release --quiet --bin "$exp"
done

echo
echo "All experiments reproduced. Artifacts: target/experiments/*.json"
